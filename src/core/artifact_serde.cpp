#include "core/artifact_serde.h"

#include <set>
#include <utility>

#include "netlist/verilog_parser.h"

namespace vcoadc::core {

namespace {

using netlist::CellLibrary;
using netlist::FlatInstance;
using netlist::PinSpec;
using netlist::PortDir;
using netlist::StdCell;

// --- shared sub-encoders --------------------------------------------------

void encode_cell(const StdCell& c, serde::Writer& w) {
  w.str(c.name);
  w.str(c.function);
  w.i64(c.drive);
  w.f64(c.width_m);
  w.f64(c.height_m);
  w.size(c.pins.size());
  for (const PinSpec& p : c.pins) {
    w.str(p.name);
    w.u8(static_cast<std::uint8_t>(p.dir));
  }
  w.f64(c.input_cap_f);
  w.f64(c.leakage_w);
  w.boolean(c.is_resistor);
  w.f64(c.resistance_ohms);
  w.str(c.power_pin);
  w.str(c.ground_pin);
}

bool decode_cell(serde::Reader& r, StdCell& c) {
  c.name = r.str();
  c.function = r.str();
  c.drive = static_cast<int>(r.i64());
  c.width_m = r.f64();
  c.height_m = r.f64();
  const std::size_t npins = r.size();
  c.pins.clear();
  c.pins.reserve(npins);
  for (std::size_t i = 0; i < npins && r.ok(); ++i) {
    PinSpec p;
    p.name = r.str();
    p.dir = static_cast<PortDir>(r.u8());
    c.pins.push_back(std::move(p));
  }
  c.input_cap_f = r.f64();
  c.leakage_w = r.f64();
  c.is_resistor = r.boolean();
  c.resistance_ohms = r.f64();
  c.power_pin = r.str();
  c.ground_pin = r.str();
  return r.ok();
}

void encode_library(const CellLibrary& lib, serde::Writer& w) {
  w.str(lib.name());
  w.size(lib.cells().size());
  for (const StdCell& c : lib.cells()) encode_cell(c, w);
}

std::shared_ptr<CellLibrary> decode_library(serde::Reader& r) {
  auto lib = std::make_shared<CellLibrary>(r.str());
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    StdCell c;
    if (!decode_cell(r, c)) return nullptr;
    lib->add(std::move(c));
  }
  return r.ok() ? lib : nullptr;
}

void encode_string_map(const std::map<std::string, std::string>& m,
                       serde::Writer& w) {
  w.size(m.size());
  for (const auto& [k, v] : m) {
    w.str(k);
    w.str(v);
  }
}

bool decode_string_map(serde::Reader& r,
                       std::map<std::string, std::string>& m) {
  const std::size_t n = r.size();
  m.clear();
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    std::string k = r.str();
    m[std::move(k)] = r.str();
  }
  return r.ok();
}

/// Flat instances reference StdCells by pointer; on disk they go by name
/// against the library the enclosing codec embeds.
void encode_flat(const std::vector<FlatInstance>& flat, serde::Writer& w) {
  w.size(flat.size());
  for (const FlatInstance& fi : flat) {
    w.str(fi.path);
    w.str(fi.cell != nullptr ? fi.cell->name : std::string());
    encode_string_map(fi.conn, w);
    w.str(fi.power_domain);
    w.str(fi.group);
  }
}

bool decode_flat(serde::Reader& r, const CellLibrary& lib,
                 std::vector<FlatInstance>& flat) {
  const std::size_t n = r.size();
  flat.clear();
  flat.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    FlatInstance fi;
    fi.path = r.str();
    const std::string cell_name = r.str();
    if (!cell_name.empty()) {
      fi.cell = lib.find(cell_name);
      if (fi.cell == nullptr) return false;  // dangling reference
    }
    if (!decode_string_map(r, fi.conn)) return false;
    fi.power_domain = r.str();
    fi.group = r.str();
    flat.push_back(std::move(fi));
  }
  return r.ok();
}

/// Collects the distinct StdCells a flat vector references into a
/// self-contained library (first-reference order, so the bytes are
/// deterministic). The subset carries everything downstream stages read
/// through FlatInstance::cell.
CellLibrary referenced_cells(const std::vector<FlatInstance>& flat) {
  CellLibrary lib("store");
  std::set<std::string> seen;
  for (const FlatInstance& fi : flat) {
    if (fi.cell != nullptr && seen.insert(fi.cell->name).second) {
      lib.add(*fi.cell);
    }
  }
  return lib;
}

void encode_rect(const synth::Rect& rect, serde::Writer& w) {
  w.f64(rect.x);
  w.f64(rect.y);
  w.f64(rect.w);
  w.f64(rect.h);
}

synth::Rect decode_rect(serde::Reader& r) {
  synth::Rect rect;
  rect.x = r.f64();
  rect.y = r.f64();
  rect.w = r.f64();
  rect.h = r.f64();
  return rect;
}

void encode_floorplan(const synth::Floorplan& fp, serde::Writer& w) {
  encode_rect(fp.die, w);
  w.f64(fp.row_height_m);
  w.f64(fp.site_width_m);
  w.size(fp.regions.size());
  for (const synth::PlacedRegion& pr : fp.regions) {
    w.str(pr.spec.name);
    w.boolean(pr.spec.is_group);
    w.size(pr.spec.members.size());
    for (const int m : pr.spec.members) w.i64(m);
    w.f64(pr.spec.cell_area_m2);
    w.f64(pr.spec.max_cell_width_m);
    encode_rect(pr.rect, w);
  }
}

bool decode_floorplan(serde::Reader& r, synth::Floorplan& fp) {
  fp.die = decode_rect(r);
  fp.row_height_m = r.f64();
  fp.site_width_m = r.f64();
  const std::size_t n = r.size();
  fp.regions.clear();
  fp.regions.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    synth::PlacedRegion pr;
    pr.spec.name = r.str();
    pr.spec.is_group = r.boolean();
    const std::size_t nm = r.size();
    pr.spec.members.reserve(nm);
    for (std::size_t j = 0; j < nm && r.ok(); ++j) {
      pr.spec.members.push_back(static_cast<int>(r.i64()));
    }
    pr.spec.cell_area_m2 = r.f64();
    pr.spec.max_cell_width_m = r.f64();
    pr.rect = decode_rect(r);
    fp.regions.push_back(std::move(pr));
  }
  return r.ok();
}

void encode_placement(const synth::Placement& pl, serde::Writer& w) {
  w.size(pl.cells.size());
  for (const synth::PlacedCell& c : pl.cells) {
    w.i64(c.flat_index);
    encode_rect(c.rect, w);
    w.i64(c.row);
    w.str(c.region);
  }
  w.boolean(pl.overflow);
}

bool decode_placement(serde::Reader& r, synth::Placement& pl) {
  const std::size_t n = r.size();
  pl.cells.clear();
  pl.cells.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    synth::PlacedCell c;
    c.flat_index = static_cast<int>(r.i64());
    c.rect = decode_rect(r);
    c.row = static_cast<int>(r.i64());
    c.region = r.str();
    pl.cells.push_back(std::move(c));
  }
  pl.overflow = r.boolean();
  return r.ok();
}

void encode_routing_estimate(const synth::RoutingEstimate& re,
                             serde::Writer& w) {
  w.size(re.nets.size());
  for (const synth::NetRoute& nr : re.nets) {
    w.str(nr.net);
    w.i64(nr.pins);
    w.f64(nr.hpwl_m);
    w.f64(nr.est_length_m);
  }
  w.f64(re.total_hpwl_m);
  w.f64(re.total_est_length_m);
  w.i64(re.congestion.nx);
  w.i64(re.congestion.ny);
  w.size(re.congestion.demand.size());
  for (const double d : re.congestion.demand) w.f64(d);
  w.f64(re.congestion.max_demand);
  w.f64(re.congestion.mean_demand);
  w.f64(re.wire_cap_f);
}

bool decode_routing_estimate(serde::Reader& r, synth::RoutingEstimate& re) {
  const std::size_t n = r.size();
  re.nets.clear();
  re.nets.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    synth::NetRoute nr;
    nr.net = r.str();
    nr.pins = static_cast<int>(r.i64());
    nr.hpwl_m = r.f64();
    nr.est_length_m = r.f64();
    re.nets.push_back(std::move(nr));
  }
  re.total_hpwl_m = r.f64();
  re.total_est_length_m = r.f64();
  re.congestion.nx = static_cast<int>(r.i64());
  re.congestion.ny = static_cast<int>(r.i64());
  const std::size_t nd = r.size();
  re.congestion.demand.clear();
  re.congestion.demand.reserve(nd);
  for (std::size_t i = 0; i < nd && r.ok(); ++i) {
    re.congestion.demand.push_back(r.f64());
  }
  re.congestion.max_demand = r.f64();
  re.congestion.mean_demand = r.f64();
  re.wire_cap_f = r.f64();
  return r.ok();
}

void encode_maze_result(const synth::MazeRouteResult& mr, serde::Writer& w) {
  w.size(mr.nets.size());
  for (const synth::RoutedNet& net : mr.nets) {
    w.str(net.name);
    w.i64(net.pins);
    w.size(net.paths.size());
    for (const auto& path : net.paths) {
      w.size(path.size());
      for (const synth::GridPoint& gp : path) {
        w.i64(gp.x);
        w.i64(gp.y);
        w.i64(gp.layer);
      }
    }
    w.f64(net.wirelength_m);
    w.i64(net.vias);
    w.boolean(net.routed);
  }
  w.f64(mr.total_wirelength_m);
  w.i64(mr.total_vias);
  w.i64(mr.failed_nets);
  w.i64(mr.overflowed_edges);
  w.i64(mr.grid_x);
  w.i64(mr.grid_y);
}

bool decode_maze_result(serde::Reader& r, synth::MazeRouteResult& mr) {
  const std::size_t n = r.size();
  mr.nets.clear();
  mr.nets.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    synth::RoutedNet net;
    net.name = r.str();
    net.pins = static_cast<int>(r.i64());
    const std::size_t np = r.size();
    net.paths.reserve(np);
    for (std::size_t j = 0; j < np && r.ok(); ++j) {
      const std::size_t npts = r.size();
      std::vector<synth::GridPoint> path;
      path.reserve(npts);
      for (std::size_t k = 0; k < npts && r.ok(); ++k) {
        synth::GridPoint gp;
        gp.x = static_cast<int>(r.i64());
        gp.y = static_cast<int>(r.i64());
        gp.layer = static_cast<int>(r.i64());
        path.push_back(gp);
      }
      net.paths.push_back(std::move(path));
    }
    net.wirelength_m = r.f64();
    net.vias = static_cast<int>(r.i64());
    net.routed = r.boolean();
    mr.nets.push_back(std::move(net));
  }
  mr.total_wirelength_m = r.f64();
  mr.total_vias = static_cast<int>(r.i64());
  mr.failed_nets = static_cast<int>(r.i64());
  mr.overflowed_edges = static_cast<int>(r.i64());
  mr.grid_x = static_cast<int>(r.i64());
  mr.grid_y = static_cast<int>(r.i64());
  return r.ok();
}

void encode_drc(const synth::DrcReport& drc, serde::Writer& w) {
  w.size(drc.violations.size());
  for (const synth::DrcViolation& v : drc.violations) {
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.str(v.detail);
  }
}

bool decode_drc(serde::Reader& r, synth::DrcReport& drc) {
  const std::size_t n = r.size();
  drc.violations.clear();
  drc.violations.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    synth::DrcViolation v;
    v.kind = static_cast<synth::DrcKind>(r.u8());
    v.detail = r.str();
    drc.violations.push_back(std::move(v));
  }
  return r.ok();
}

void encode_layout_stats(const synth::LayoutStats& st, serde::Writer& w) {
  w.f64(st.die_area_m2);
  w.f64(st.cell_area_m2);
  w.f64(st.utilization);
  w.i64(st.num_cells);
  w.i64(st.num_rows);
  w.i64(st.num_regions);
}

synth::LayoutStats decode_layout_stats(serde::Reader& r) {
  synth::LayoutStats st;
  st.die_area_m2 = r.f64();
  st.cell_area_m2 = r.f64();
  st.utilization = r.f64();
  st.num_cells = static_cast<int>(r.i64());
  st.num_rows = static_cast<int>(r.i64());
  st.num_regions = static_cast<int>(r.i64());
  return st;
}

/// Hierarchical design over a decoded library (lives only inside the
/// DesignBundle codec — flat-carrying artifacts store flat form).
void encode_design(const netlist::Design& d, serde::Writer& w) {
  w.str(d.top());
  w.size(d.modules().size());
  for (const netlist::Module& mod : d.modules()) {
    w.str(mod.name());
    w.size(mod.ports().size());
    for (const netlist::Port& p : mod.ports()) {
      w.str(p.name);
      w.u8(static_cast<std::uint8_t>(p.dir));
    }
    w.size(mod.nets().size());
    for (const std::string& net : mod.nets()) w.str(net);
    w.size(mod.instances().size());
    for (const netlist::Instance& inst : mod.instances()) {
      w.str(inst.name);
      w.str(inst.master);
      encode_string_map(inst.conn, w);
      w.str(inst.power_domain);
      w.str(inst.group);
    }
  }
}

std::shared_ptr<netlist::Design> decode_design(serde::Reader& r,
                                               const CellLibrary* lib) {
  auto d = std::make_shared<netlist::Design>(lib);
  const std::string top = r.str();
  const std::size_t nmod = r.size();
  for (std::size_t i = 0; i < nmod && r.ok(); ++i) {
    netlist::Module& mod = d->add_module(r.str());
    const std::size_t nports = r.size();
    for (std::size_t j = 0; j < nports && r.ok(); ++j) {
      const std::string name = r.str();
      mod.add_port(name, static_cast<PortDir>(r.u8()));
    }
    const std::size_t nnets = r.size();
    for (std::size_t j = 0; j < nnets && r.ok(); ++j) {
      mod.add_net(r.str());
    }
    const std::size_t ninst = r.size();
    for (std::size_t j = 0; j < ninst && r.ok(); ++j) {
      netlist::Instance inst;
      inst.name = r.str();
      inst.master = r.str();
      if (!decode_string_map(r, inst.conn)) return nullptr;
      inst.power_domain = r.str();
      inst.group = r.str();
      mod.add_instance(std::move(inst));
    }
  }
  d->set_top(top);
  return r.ok() ? d : nullptr;
}

// --- the stage-artifact codecs --------------------------------------------

void encode_cell_library(const CellLibrary& lib, serde::Writer& w) {
  encode_library(lib, w);
}

std::shared_ptr<const CellLibrary> decode_cell_library(serde::Reader& r) {
  auto lib = decode_library(r);
  return (lib != nullptr && r.ok() && r.at_end()) ? lib : nullptr;
}

void encode_design_bundle(const DesignBundle& b, serde::Writer& w) {
  // A bundle with nulls is never cached (the netlist stage refuses it);
  // encode defensively anyway so a future misuse fails on decode, not UB.
  w.boolean(b.lib != nullptr && b.design != nullptr);
  if (b.lib == nullptr || b.design == nullptr) return;
  encode_library(*b.lib, w);
  encode_design(*b.design, w);
}

std::shared_ptr<const DesignBundle> decode_design_bundle(serde::Reader& r) {
  if (!r.boolean() || !r.ok()) return nullptr;
  auto lib = decode_library(r);
  if (lib == nullptr) return nullptr;
  auto design = decode_design(r, lib.get());
  if (design == nullptr || !r.ok() || !r.at_end()) return nullptr;
  auto b = std::make_shared<DesignBundle>();
  b->lib = std::move(lib);
  b->design = std::move(design);
  return b;
}

void encode_floorplan_artifact(const synth::FloorplanStageResult& a,
                               serde::Writer& w) {
  encode_library(referenced_cells(a.flat), w);
  encode_flat(a.flat, w);
  encode_floorplan(a.fp, w);
  w.str(a.floorplan_spec);
}

std::shared_ptr<const synth::FloorplanStageResult> decode_floorplan_artifact(
    serde::Reader& r) {
  auto lib = decode_library(r);
  if (lib == nullptr) return nullptr;
  auto a = std::make_shared<synth::FloorplanStageResult>();
  if (!decode_flat(r, *lib, a->flat)) return nullptr;
  if (!decode_floorplan(r, a->fp)) return nullptr;
  a->floorplan_spec = r.str();
  if (!r.ok() || !r.at_end()) return nullptr;
  a->owner = std::shared_ptr<const void>(lib);
  return a;
}

void encode_placement_artifact(const synth::Placement& pl, serde::Writer& w) {
  encode_placement(pl, w);
}

std::shared_ptr<const synth::Placement> decode_placement_artifact(
    serde::Reader& r) {
  auto pl = std::make_shared<synth::Placement>();
  if (!decode_placement(r, *pl) || !r.at_end()) return nullptr;
  return pl;
}

void encode_synthesis_artifact(const synth::SynthesisResult& s,
                               serde::Writer& w) {
  w.str(s.floorplan_spec);
  // Failed results (diagnostics, null layout) are never cached, so the
  // persisted form carries a layout by construction; keep the flag so a
  // hand-damaged record fails decode instead of crashing.
  w.boolean(s.layout != nullptr);
  if (s.layout != nullptr) {
    encode_library(referenced_cells(s.layout->flat()), w);
    encode_flat(s.layout->flat(), w);
    encode_floorplan(s.layout->floorplan(), w);
    encode_placement(s.layout->placement(), w);
  }
  encode_routing_estimate(s.routing, w);
  encode_maze_result(s.detailed_routing, w);
  encode_drc(s.drc, w);
  encode_layout_stats(s.stats, w);
}

std::shared_ptr<const synth::SynthesisResult> decode_synthesis_artifact(
    serde::Reader& r) {
  auto s = std::make_shared<synth::SynthesisResult>();
  s->floorplan_spec = r.str();
  if (!r.boolean() || !r.ok()) return nullptr;
  auto lib = decode_library(r);
  if (lib == nullptr) return nullptr;
  std::vector<FlatInstance> flat;
  if (!decode_flat(r, *lib, flat)) return nullptr;
  synth::Floorplan fp;
  if (!decode_floorplan(r, fp)) return nullptr;
  synth::Placement pl;
  if (!decode_placement(r, pl)) return nullptr;
  s->layout = std::make_unique<synth::Layout>(std::move(flat), std::move(fp),
                                              std::move(pl));
  if (!decode_routing_estimate(r, s->routing)) return nullptr;
  if (!decode_maze_result(r, s->detailed_routing)) return nullptr;
  if (!decode_drc(r, s->drc)) return nullptr;
  s->stats = decode_layout_stats(r);
  if (!r.ok() || !r.at_end()) return nullptr;
  s->owner = std::shared_ptr<const void>(lib);
  return s;
}

void encode_run_result(const RunResult& res, serde::Writer& w) {
  w.f64(res.fin_hz);
  w.f64(res.amplitude_v);
  w.f64(res.full_scale_v);
  w.size(res.mod.output.size());
  for (const double v : res.mod.output) w.f64(v);
  w.size(res.mod.counts.size());
  for (const int v : res.mod.counts) w.i64(v);
  w.size(res.mod.slice_bits.size());
  for (const auto& bits : res.mod.slice_bits) {
    w.size(bits.size());
    std::uint8_t acc = 0;
    int fill = 0;
    for (const bool b : bits) {
      acc = static_cast<std::uint8_t>(acc | ((b ? 1 : 0) << fill));
      if (++fill == 8) {
        w.u8(acc);
        acc = 0;
        fill = 0;
      }
    }
    if (fill != 0) w.u8(acc);
  }
  w.f64(res.mod.mean_vctrlp);
  w.f64(res.mod.mean_vctrln);
  w.f64(res.mod.mean_freq1_hz);
  w.f64(res.mod.mean_freq2_hz);
  w.f64(res.mod.bit_toggle_rate);
  w.size(res.spectrum.freq_hz.size());
  for (const double v : res.spectrum.freq_hz) w.f64(v);
  w.size(res.spectrum.power.size());
  for (const double v : res.spectrum.power) w.f64(v);
  w.size(res.spectrum.dbfs.size());
  for (const double v : res.spectrum.dbfs) w.f64(v);
  w.f64(res.spectrum.fs_hz);
  w.f64(res.spectrum.bin_hz);
  w.f64(res.spectrum.enbw_bins);
  w.u8(static_cast<std::uint8_t>(res.spectrum.window));
  w.f64(res.sndr.fundamental_hz);
  w.f64(res.sndr.fundamental_dbfs);
  w.f64(res.sndr.signal_power);
  w.f64(res.sndr.nad_power);
  w.f64(res.sndr.noise_power);
  w.f64(res.sndr.distortion_power);
  w.f64(res.sndr.sndr_db);
  w.f64(res.sndr.snr_db);
  w.f64(res.sndr.thd_db);
  w.f64(res.sndr.sfdr_db);
  w.f64(res.sndr.enob);
  w.f64(res.shaping.db_per_decade);
  w.f64(res.shaping.r_squared);
  w.size(res.idle_tones.size());
  for (const dsp::IdleTone& t : res.idle_tones) {
    w.f64(t.freq_hz);
    w.f64(t.dbfs);
    w.f64(t.above_floor_db);
  }
  w.f64(res.power.vco_w);
  w.f64(res.power.sampling_w);
  w.f64(res.power.dac_drive_w);
  w.f64(res.power.buffer_sw_w);
  w.f64(res.power.wire_w);
  w.f64(res.power.leakage_w);
  w.f64(res.power.dac_static_w);
  w.f64(res.power.buffer_bias_w);
  w.f64(res.fom_fj);
}

std::shared_ptr<const RunResult> decode_run_result(serde::Reader& r) {
  auto res = std::make_shared<RunResult>();
  res->fin_hz = r.f64();
  res->amplitude_v = r.f64();
  res->full_scale_v = r.f64();
  {
    const std::size_t n = r.size();
    res->mod.output.reserve(n);
    for (std::size_t i = 0; i < n && r.ok(); ++i) {
      res->mod.output.push_back(r.f64());
    }
  }
  {
    const std::size_t n = r.size();
    res->mod.counts.reserve(n);
    for (std::size_t i = 0; i < n && r.ok(); ++i) {
      res->mod.counts.push_back(static_cast<int>(r.i64()));
    }
  }
  {
    const std::size_t nslices = r.size();
    res->mod.slice_bits.reserve(nslices);
    for (std::size_t i = 0; i < nslices && r.ok(); ++i) {
      const std::size_t nbits = r.size();
      std::vector<bool> bits;
      bits.reserve(nbits);
      std::uint8_t acc = 0;
      for (std::size_t j = 0; j < nbits && r.ok(); ++j) {
        if (j % 8 == 0) acc = r.u8();
        bits.push_back(((acc >> (j % 8)) & 1) != 0);
      }
      res->mod.slice_bits.push_back(std::move(bits));
    }
  }
  res->mod.mean_vctrlp = r.f64();
  res->mod.mean_vctrln = r.f64();
  res->mod.mean_freq1_hz = r.f64();
  res->mod.mean_freq2_hz = r.f64();
  res->mod.bit_toggle_rate = r.f64();
  for (std::vector<double>* vec :
       {&res->spectrum.freq_hz, &res->spectrum.power, &res->spectrum.dbfs}) {
    const std::size_t n = r.size();
    vec->reserve(n);
    for (std::size_t i = 0; i < n && r.ok(); ++i) vec->push_back(r.f64());
  }
  res->spectrum.fs_hz = r.f64();
  res->spectrum.bin_hz = r.f64();
  res->spectrum.enbw_bins = r.f64();
  res->spectrum.window = static_cast<dsp::WindowKind>(r.u8());
  res->sndr.fundamental_hz = r.f64();
  res->sndr.fundamental_dbfs = r.f64();
  res->sndr.signal_power = r.f64();
  res->sndr.nad_power = r.f64();
  res->sndr.noise_power = r.f64();
  res->sndr.distortion_power = r.f64();
  res->sndr.sndr_db = r.f64();
  res->sndr.snr_db = r.f64();
  res->sndr.thd_db = r.f64();
  res->sndr.sfdr_db = r.f64();
  res->sndr.enob = r.f64();
  res->shaping.db_per_decade = r.f64();
  res->shaping.r_squared = r.f64();
  {
    const std::size_t n = r.size();
    res->idle_tones.reserve(n);
    for (std::size_t i = 0; i < n && r.ok(); ++i) {
      dsp::IdleTone t;
      t.freq_hz = r.f64();
      t.dbfs = r.f64();
      t.above_floor_db = r.f64();
      res->idle_tones.push_back(t);
    }
  }
  res->power.vco_w = r.f64();
  res->power.sampling_w = r.f64();
  res->power.dac_drive_w = r.f64();
  res->power.buffer_sw_w = r.f64();
  res->power.wire_w = r.f64();
  res->power.leakage_w = r.f64();
  res->power.dac_static_w = r.f64();
  res->power.buffer_bias_w = r.f64();
  res->fom_fj = r.f64();
  if (!r.ok() || !r.at_end()) return nullptr;
  return res;
}

void encode_hdl_emit_artifact(const HdlEmitResult& a, serde::Writer& w) {
  // The emitted text is the payload of record; the parsed view is derived
  // from it on decode and never serialized (so text and structure cannot
  // drift on disk).
  w.str(a.verilog);
  w.str(a.top);
  w.i64(a.instances_compared);
  w.boolean(a.lib != nullptr);
  if (a.lib != nullptr) encode_library(*a.lib, w);
}

std::shared_ptr<const HdlEmitResult> decode_hdl_emit_artifact(
    serde::Reader& r) {
  auto a = std::make_shared<HdlEmitResult>();
  a->verilog = r.str();
  a->top = r.str();
  a->instances_compared = static_cast<int>(r.i64());
  if (!r.boolean() || !r.ok()) return nullptr;
  auto lib = decode_library(r);
  if (lib == nullptr || !r.ok() || !r.at_end()) return nullptr;
  auto parsed = std::make_shared<netlist::Design>(lib.get());
  const netlist::ParseResult pr = netlist::parse_verilog(a->verilog, *parsed);
  if (!pr.ok) return nullptr;  // corrupt-miss: stored text must re-parse
  parsed->set_top(a->top);
  if (parsed->find_module(a->top) == nullptr) return nullptr;
  a->lib = std::move(lib);
  a->parsed = std::move(parsed);
  return a;
}

void encode_gate_sim_artifact(const GateSimResult& g, serde::Writer& w) {
  w.boolean(g.comparator_ok);
  w.f64(g.ring_period_s);
  w.f64(g.ring_period_pred_s);
  w.boolean(g.ring_ok);
  w.size(g.n_samples);
  w.i64(g.num_slices);
  w.size(g.decoded.size());
  for (const double v : g.decoded) w.f64(v);
  w.size(g.decimated.size());
  for (const double v : g.decimated) w.f64(v);
  w.boolean(g.matches_behavioral);
  w.u64(g.transitions);
}

std::shared_ptr<const GateSimResult> decode_gate_sim_artifact(
    serde::Reader& r) {
  auto g = std::make_shared<GateSimResult>();
  g->comparator_ok = r.boolean();
  g->ring_period_s = r.f64();
  g->ring_period_pred_s = r.f64();
  g->ring_ok = r.boolean();
  g->n_samples = r.u64();
  g->num_slices = static_cast<int>(r.i64());
  for (std::vector<double>* vec : {&g->decoded, &g->decimated}) {
    const std::size_t n = r.size();
    vec->reserve(n);
    for (std::size_t i = 0; i < n && r.ok(); ++i) vec->push_back(r.f64());
  }
  g->matches_behavioral = r.boolean();
  g->transitions = r.u64();
  if (!r.ok() || !r.at_end()) return nullptr;
  return g;
}

}  // namespace

const ArtifactCodec<CellLibrary>& cell_library_codec() {
  static const ArtifactCodec<CellLibrary> codec{
      "cell_library", 1, &encode_cell_library, &decode_cell_library};
  return codec;
}

const ArtifactCodec<DesignBundle>& design_bundle_codec() {
  static const ArtifactCodec<DesignBundle> codec{
      "design_bundle", 1, &encode_design_bundle, &decode_design_bundle};
  return codec;
}

const ArtifactCodec<synth::FloorplanStageResult>& floorplan_codec() {
  static const ArtifactCodec<synth::FloorplanStageResult> codec{
      "floorplan", 1, &encode_floorplan_artifact, &decode_floorplan_artifact};
  return codec;
}

const ArtifactCodec<synth::Placement>& placement_codec() {
  static const ArtifactCodec<synth::Placement> codec{
      "placement", 1, &encode_placement_artifact, &decode_placement_artifact};
  return codec;
}

const ArtifactCodec<synth::SynthesisResult>& synthesis_codec() {
  static const ArtifactCodec<synth::SynthesisResult> codec{
      "synthesis", 1, &encode_synthesis_artifact, &decode_synthesis_artifact};
  return codec;
}

const ArtifactCodec<RunResult>& run_result_codec() {
  static const ArtifactCodec<RunResult> codec{
      "run_result", 1, &encode_run_result, &decode_run_result};
  return codec;
}

const ArtifactCodec<HdlEmitResult>& hdl_emit_codec() {
  static const ArtifactCodec<HdlEmitResult> codec{
      "hdl_emit", 1, &encode_hdl_emit_artifact, &decode_hdl_emit_artifact};
  return codec;
}

const ArtifactCodec<GateSimResult>& gate_sim_codec() {
  static const ArtifactCodec<GateSimResult> codec{
      "gate_sim", 1, &encode_gate_sim_artifact, &decode_gate_sim_artifact};
  return codec;
}

}  // namespace vcoadc::core
