#include "core/power_model.h"

#include <cmath>

#include "netlist/generator.h"
#include "util/strings.h"

namespace vcoadc::core {
namespace {

/// Signal activity (average output transitions per clock of the relevant
/// rate) by logic function, for the VDD sampling domain.
double vdd_domain_activity(const std::string& function) {
  if (function == "nor3") return 2.0;  // comparator nodes reset every cycle
  if (function == "nor2") return 0.5;  // SR latch flips on data changes
  if (function == "xor2") return 0.5;
  if (function == "inv") return 0.5;
  if (function == "clkbuf") return 2.0;  // two edges per clock
  if (function == "buf") return 0.5;
  if (function == "dlat") return 0.5;
  return 0.5;
}

}  // namespace

PowerBreakdown estimate_power(const AdcSpec& spec,
                              const netlist::Design& design,
                              const msim::ModulatorResult& activity,
                              const PowerModelOptions& opts) {
  const tech::TechNode node = spec.tech_node();
  PowerBreakdown pb;

  const double f_vco = 0.5 * (activity.mean_freq1_hz + activity.mean_freq2_hz);
  const double v_ctrl = 0.5 * (activity.mean_vctrlp + activity.mean_vctrln);
  const double v_buf = 0.5 * node.vdd;  // buffer stage bias point
  const double k = opts.switching_overhead;

  int buf_cells = 0;
  for (const auto& fi : design.flatten()) {
    const auto& cell = *fi.cell;
    pb.leakage_w += cell.leakage_w;
    if (cell.is_resistor) continue;
    const double c = cell.input_cap_f * k;
    const std::string& pd = fi.power_domain;
    if (pd == netlist::kPdVctrlp || pd == netlist::kPdVctrln) {
      // Ring inverters: every output completes one full cycle per VCO
      // period -> switched energy C * Vctrl^2 per period.
      pb.vco_w += c * v_ctrl * v_ctrl * f_vco;
    } else if (pd == netlist::kPdVbuf1 || pd == netlist::kPdVbuf2) {
      // Buffer inverters switch at the ring rate from the VBUF supply;
      // their switching is digital, only the bias tail below is analog.
      pb.buffer_sw_w += c * v_buf * v_buf * f_vco;
      if (cell.function == "inv") {
        buf_cells++;  // counted per inverter; bias applied per buf_cell (4)
      }
    } else if (pd == netlist::kPdVrefp) {
      // DAC drivers toggle when the slice bit toggles.
      const double toggles_per_s = activity.bit_toggle_rate /
                                   std::max(1, spec.num_slices) * spec.fs_hz;
      pb.dac_drive_w += 0.5 * c * node.vdd * node.vdd * toggles_per_s;
    } else {
      // VDD sampling domain.
      pb.sampling_w += 0.5 * c * node.vdd * node.vdd *
                       vdd_domain_activity(cell.function) * spec.fs_hz;
    }
  }
  // Fixed bias tail of each buf_cell (4 inverters per cell).
  pb.buffer_bias_w +=
      (buf_cells / 4.0) * opts.buffer_bias_per_cell_a * node.vdd;

  // Signal-wire switching: average net activity ~0.35 transitions per clock
  // (ring tap wires toggle faster but are short and local; the sampled DAC
  // bits toggle well below once per clock). No gate-internal overhead
  // applies to extracted wire capacitance.
  pb.wire_w += 0.35 * opts.wire_cap_f * node.vdd * node.vdd * spec.fs_hz;

  // Resistor DAC static power: per slice and side, the resistor either
  // sources (VREFP - Vctrl across R, drawn from VREFP) or sinks
  // (Vctrl across R to ground); duty is ~50% at midscale.
  const double r_dac = 11000.0 * spec.dac_fragments;
  const double vrefp = node.vdd;
  const double p_per_res = 0.5 * vrefp * (vrefp - v_ctrl) / r_dac +
                           0.5 * v_ctrl * v_ctrl / r_dac;
  pb.dac_static_w += 2.0 * spec.num_slices * p_per_res;

  return pb;
}

}  // namespace vcoadc::core
