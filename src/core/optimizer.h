// Specification-driven design optimization - the generator workflow the
// paper's Sec. 2.2 sketches by hand ("easy adaptations to different
// specifications as long as they are within the ADC performance boundary
// in a given process"), automated: given a target SNDR in a target
// bandwidth at a node, search the (slices, fs, loop gain) space for the
// minimum-power spec that meets it, honoring AdcSpec::validate()'s
// realizability rules.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/adc_spec.h"

namespace vcoadc::core {

struct OptimizeTarget {
  double node_nm = 40;
  double min_sndr_db = 60.0;
  double bandwidth_hz = 2e6;
  /// Margin added to the target during search so the pick survives
  /// mismatch draws (see MonteCarlo sigma ~1 dB).
  double margin_db = 1.0;
};

struct OptimizeOptions {
  std::vector<int> slice_choices{4, 8, 12, 16, 24, 32};
  std::vector<double> osr_choices{32, 50, 75, 100, 150};
  std::size_t n_samples = 1 << 13;
  std::uint64_t seed = 1;
  /// Execution environment; every candidate evaluation runs as a SimRun
  /// stage of the flow graph, so a re-search over an overlapping grid
  /// reuses cached evaluations.
  ExecContext exec;
};

struct CandidateResult {
  AdcSpec spec;
  double sndr_db = 0;
  double power_w = 0;
  bool meets = false;
  bool valid = false;  ///< passed AdcSpec::validate()
};

struct OptimizeResult {
  std::optional<AdcSpec> best;   ///< empty when nothing met the target
  double best_power_w = 0;
  double best_sndr_db = 0;
  std::vector<CandidateResult> evaluated;  ///< full search trace
};

/// Exhaustive search over the candidate grid with early pruning: candidates
/// are ordered by a power prior (slices * fs) and a candidate is skipped
/// once a cheaper design already met the target. Thin shim over
/// core::evaluate(EvalKind::kOptimize).
OptimizeResult optimize_spec(const OptimizeTarget& target,
                             const OptimizeOptions& opts = {});

}  // namespace vcoadc::core
