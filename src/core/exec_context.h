// ExecContext: the one execution-environment knob bundle threaded through
// every flow driver (Monte Carlo, corner sweeps, datasheets, synthesis,
// the optimizer, benches and the CLI).
//
// Before the stage graph, each driver carried its own copy of the same
// three knobs — MonteCarloOptions.threads, DatasheetOptions.threads,
// SynthesisOptions.route_threads — plus ad-hoc seed plumbing. They are
// folded here; the old fields remain as deprecated forwarding members
// (honored when explicitly set) so existing call sites keep compiling.
//
// None of these fields participate in artifact cache keys: thread count,
// trace sink and cache pointer must never change result bytes (the
// engine's determinism contract), so two runs that differ only in
// ExecContext share every cached artifact.
#pragma once

#include <cstdint>
#include <cstdio>
#include <utility>

#include "util/diag.h"

namespace vcoadc::util {
class Trace;
}

namespace vcoadc::core {

class ArtifactCache;
ArtifactCache& default_artifact_cache();

struct ExecContext {
  /// Worker threads for batch fan-outs and the router's rip-up batches;
  /// 0 = one per hardware thread, 1 = serial reference. Any value yields
  /// bit-identical results.
  int threads = 0;
  /// Root seed for stochastic stages that do not carry their own.
  std::uint64_t seed = 1;
  /// Per-stage event sink; null = no tracing.
  util::Trace* trace = nullptr;
  /// Artifact store shared by all stages; null disables caching (every
  /// stage recomputes). Defaults to the bounded process-wide cache.
  ArtifactCache* cache = &default_artifact_cache();
  /// Structured-diagnostics collector; every stage boundary reports
  /// validation failures here. Null = diagnostics go to stderr (one line
  /// each) so a failure is never silent.
  util::DiagSink* diag = nullptr;
  /// Test-only fault-injection plan (see util::FaultPlan); null in
  /// production. Stages armed in the plan corrupt their input before
  /// validation and always bypass the artifact cache.
  const util::FaultPlan* faults = nullptr;

  /// Resolves a deprecated per-driver thread field against this context:
  /// an explicitly set legacy value (!= 0) wins, otherwise `threads`.
  int resolve_threads(int legacy_threads) const {
    return legacy_threads != 0 ? legacy_threads : threads;
  }
};

/// Reports one diagnostic through the context: into its sink when present,
/// otherwise one stderr line (a rejected input must never be silent).
inline void emit_diag(const ExecContext& ctx, util::Diagnostic d) {
  if (ctx.diag != nullptr) {
    ctx.diag->add(std::move(d));
  } else {
    std::fprintf(stderr, "vcoadc: %s\n", d.to_string().c_str());
  }
}

inline void emit_diags(const ExecContext& ctx,
                       const std::vector<util::Diagnostic>& diags) {
  for (const util::Diagnostic& d : diags) emit_diag(ctx, d);
}

}  // namespace vcoadc::core
