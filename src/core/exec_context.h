// ExecContext: the one execution-environment knob bundle threaded through
// every flow driver (Monte Carlo, corner sweeps, datasheets, synthesis,
// the optimizer, core::evaluate, benches and the CLI). It is the single
// source of truth for execution knobs — the per-driver thread forwarders
// that once shadowed `threads` are gone.
//
// None of these fields participate in artifact cache keys: thread count,
// trace sink, cache and store pointers must never change result bytes
// (the engine's determinism contract), so two runs that differ only in
// ExecContext share every cached artifact — including, via `store`, runs
// in different processes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <utility>

#include "util/diag.h"

namespace vcoadc::util {
class Trace;
}

namespace vcoadc::core {

class ArtifactCache;
class ArtifactStore;
ArtifactCache& default_artifact_cache();

struct ExecContext {
  /// Worker threads for batch fan-outs and the router's rip-up batches;
  /// 0 = one per hardware thread, 1 = serial reference. Any value yields
  /// bit-identical results.
  int threads = 0;
  /// Root seed for stochastic stages that do not carry their own.
  std::uint64_t seed = 1;
  /// Per-stage event sink; null = no tracing.
  util::Trace* trace = nullptr;
  /// Artifact store shared by all stages; null disables caching (every
  /// stage recomputes). Defaults to the bounded process-wide cache.
  ArtifactCache* cache = &default_artifact_cache();
  /// Structured-diagnostics collector; every stage boundary reports
  /// validation failures here. Null = diagnostics go to stderr (one line
  /// each) so a failure is never silent.
  util::DiagSink* diag = nullptr;
  /// Persistent artifact store (disk tier under `cache`); null = no
  /// persistence. When set, a cache-missed stage first tries to load the
  /// artifact's canonical bytes from disk, and saves them after a real
  /// build — so a second process over the same inputs builds nothing.
  ArtifactStore* store = nullptr;
  /// Test-only fault-injection plan (see util::FaultPlan); null in
  /// production. Stages armed in the plan corrupt their input before
  /// validation and always bypass the artifact cache.
  const util::FaultPlan* faults = nullptr;
};

/// Reports one diagnostic through the context: into its sink when present,
/// otherwise one stderr line (a rejected input must never be silent).
inline void emit_diag(const ExecContext& ctx, util::Diagnostic d) {
  if (ctx.diag != nullptr) {
    ctx.diag->add(std::move(d));
  } else {
    std::fprintf(stderr, "vcoadc: %s\n", d.to_string().c_str());
  }
}

inline void emit_diags(const ExecContext& ctx,
                       const std::vector<util::Diagnostic>& diags) {
  for (const util::Diagnostic& d : diags) emit_diag(ctx, d);
}

}  // namespace vcoadc::core
