#include "core/backend.h"

#include <cmath>
#include <numbers>

#include "dsp/decimator.h"

namespace vcoadc::core {
namespace {

/// |H_cic(f)| at normalized input frequency f (cycles/sample), unity at DC.
double cic_mag(int order, int rate, double f) {
  if (f == 0.0) return 1.0;
  const double num = std::sin(std::numbers::pi * f * rate);
  const double den = rate * std::sin(std::numbers::pi * f);
  if (den == 0.0) return 1.0;
  return std::pow(std::fabs(num / den), order);
}

}  // namespace

std::vector<double> design_cic_compensator(int cic_order, int cic_rate,
                                           std::size_t taps,
                                           double passband_frac) {
  if (taps % 2 == 0) ++taps;  // linear phase needs symmetry around a center
  const std::size_t half = taps / 2;

  // Least-squares fit of a symmetric FIR to the target magnitude
  // 1/|H_cic| over the passband of the POST-CIC rate. A symmetric odd FIR
  // has response  H(w) = c0 + 2 * sum_k ck cos(k w).
  constexpr int kSamples = 64;
  // Normal equations for the (half+1) cosine coefficients.
  std::vector<std::vector<double>> ata(half + 1,
                                       std::vector<double>(half + 1, 0.0));
  std::vector<double> atb(half + 1, 0.0);
  for (int s = 0; s < kSamples; ++s) {
    const double f_out = passband_frac * (s + 0.5) / kSamples;  // post-CIC
    const double f_in = f_out / cic_rate;                       // pre-CIC
    const double target = 1.0 / cic_mag(cic_order, cic_rate, f_in);
    const double w = 2.0 * std::numbers::pi * f_out;
    std::vector<double> basis(half + 1);
    basis[0] = 1.0;
    for (std::size_t k = 1; k <= half; ++k) {
      basis[k] = 2.0 * std::cos(w * static_cast<double>(k));
    }
    for (std::size_t i = 0; i <= half; ++i) {
      atb[i] += basis[i] * target;
      for (std::size_t j = 0; j <= half; ++j) {
        ata[i][j] += basis[i] * basis[j];
      }
    }
  }
  // Gaussian elimination (the system is tiny and well conditioned).
  const std::size_t n = half + 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(ata[r][col]) > std::fabs(ata[piv][col])) piv = r;
    }
    std::swap(ata[col], ata[piv]);
    std::swap(atb[col], atb[piv]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || ata[col][col] == 0.0) continue;
      const double factor = ata[r][col] / ata[col][col];
      for (std::size_t c = col; c < n; ++c) ata[r][c] -= factor * ata[col][c];
      atb[r] -= factor * atb[col];
    }
  }
  std::vector<double> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = (ata[i][i] != 0.0) ? atb[i] / ata[i][i] : 0.0;
  }
  // Assemble the symmetric impulse response.
  std::vector<double> h(taps, 0.0);
  h[half] = c[0];
  for (std::size_t k = 1; k <= half; ++k) {
    h[half - k] = c[k];
    h[half + k] = c[k];
  }
  return h;
}

DigitalBackend::DigitalBackend(const AdcSpec& spec, const BackendConfig& cfg)
    : cfg_(cfg), fs_hz_(spec.fs_hz) {
  cic_rate_ = cfg.cic_rate;
  if (cic_rate_ <= 0) {
    // Largest power of two <= OSR/4: with fir_rate = 4 the total
    // decimation is a power of two, so a capture that was coherent at the
    // modulator rate stays coherent after decimation.
    const int limit = std::max(1, static_cast<int>(spec.osr()) / 4);
    cic_rate_ = 1;
    while (cic_rate_ * 2 <= limit) cic_rate_ *= 2;
  }
  if (cfg_.droop_compensation) {
    comp_ = design_cic_compensator(cfg_.cic_order, cic_rate_, cfg_.comp_taps);
  }
}

std::vector<double> DigitalBackend::process(
    const std::vector<double>& modulator_out) const {
  dsp::CicDecimator cic(cfg_.cic_order, cic_rate_);
  std::vector<double> mid = cic.process(modulator_out);
  if (!comp_.empty()) {
    mid = dsp::fir_decimate(mid, comp_, 1);  // rate 1: filter only
  }
  if (cfg_.fir_rate <= 1) return mid;
  const double cutoff = 0.47 / static_cast<double>(cfg_.fir_rate);
  const auto lp = dsp::design_lowpass_fir(cfg_.fir_taps, cutoff);
  return dsp::fir_decimate(mid, lp, cfg_.fir_rate);
}

}  // namespace vcoadc::core
