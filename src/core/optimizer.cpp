#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "core/driver_impl.h"
#include "core/eval.h"
#include "core/flow.h"

namespace vcoadc::core {

OptimizeResult detail::optimize_impl(const ExecContext& ctx,
                                     const OptimizeTarget& target,
                                     const OptimizeOptions& opts) {
  OptimizeResult result;

  // Target/grid sanity: a malformed target would otherwise just produce a
  // grid of invalid candidates (or a division by zero in the fin choice).
  {
    std::vector<util::Diagnostic> diags;
    if (!(std::isfinite(target.bandwidth_hz) && target.bandwidth_hz > 0)) {
      diags.push_back(util::Diagnostic{
          util::Severity::kError, "optimize", "bandwidth_hz",
          "target bandwidth must be finite and positive"});
    }
    if (!std::isfinite(target.min_sndr_db) ||
        !std::isfinite(target.margin_db)) {
      diags.push_back(util::Diagnostic{util::Severity::kError, "optimize",
                                       "min_sndr_db/margin_db",
                                       "must be finite"});
    }
    if (opts.slice_choices.empty() || opts.osr_choices.empty()) {
      diags.push_back(util::Diagnostic{util::Severity::kError, "optimize",
                                       "choices",
                                       "candidate grid is empty"});
    }
    emit_diags(ctx, diags);
    if (has_errors(diags)) return result;
  }

  struct Candidate {
    int slices;
    double osr;
    double prior;  // power prior ~ slices * fs
  };
  std::vector<Candidate> candidates;
  for (int slices : opts.slice_choices) {
    for (double osr : opts.osr_choices) {
      const double fs = 2.0 * target.bandwidth_hz * osr;
      candidates.push_back({slices, osr, static_cast<double>(slices) * fs});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.prior != b.prior) return a.prior < b.prior;
              return a.slices < b.slices;
            });

  double best_power = 0;
  for (const Candidate& c : candidates) {
    AdcSpec spec = AdcSpec::paper_40nm();
    spec.node_nm = target.node_nm;
    spec.num_slices = c.slices;
    spec.bandwidth_hz = target.bandwidth_hz;
    spec.fs_hz = 2.0 * target.bandwidth_hz * c.osr;
    spec.seed = opts.seed;

    CandidateResult cr;
    cr.spec = spec;
    cr.valid = spec.validate().empty();
    if (cr.valid) {
      // Prune: the power prior grows monotonically within the sorted list
      // only approximately, so only skip when a met design was strictly
      // cheaper in prior terms than this candidate.
      Flow flow(ctx);
      SimulationOptions sim;
      sim.n_samples = opts.n_samples;
      sim.fin_target_hz = target.bandwidth_hz / 5.0;
      const auto run = flow.sim_run(spec, sim);
      if (run == nullptr) {
        // The flow refused the run (bad options / injected fault) and
        // already reported why; record the candidate as unevaluated.
        cr.valid = false;
        result.evaluated.push_back(std::move(cr));
        continue;
      }
      cr.sndr_db = run->sndr.sndr_db;
      cr.power_w = run->power.total_w();
      cr.meets = cr.sndr_db >= target.min_sndr_db + target.margin_db;
      if (cr.meets &&
          (!result.best.has_value() || cr.power_w < best_power)) {
        result.best = spec;
        best_power = cr.power_w;
        result.best_sndr_db = cr.sndr_db;
      }
    }
    result.evaluated.push_back(std::move(cr));
  }
  result.best_power_w = best_power;
  return result;
}

OptimizeResult optimize_spec(const OptimizeTarget& target,
                             const OptimizeOptions& opts) {
  EvalRequest req;
  req.kind = EvalKind::kOptimize;
  req.optimize_target = target;
  req.optimize = opts;
  return std::move(evaluate(req, opts.exec).optimize);
}

}  // namespace vcoadc::core
