#include "core/optimizer.h"

#include <algorithm>

#include "core/flow.h"

namespace vcoadc::core {

OptimizeResult optimize_spec(const OptimizeTarget& target,
                             const OptimizeOptions& opts) {
  OptimizeResult result;

  struct Candidate {
    int slices;
    double osr;
    double prior;  // power prior ~ slices * fs
  };
  std::vector<Candidate> candidates;
  for (int slices : opts.slice_choices) {
    for (double osr : opts.osr_choices) {
      const double fs = 2.0 * target.bandwidth_hz * osr;
      candidates.push_back({slices, osr, static_cast<double>(slices) * fs});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.prior != b.prior) return a.prior < b.prior;
              return a.slices < b.slices;
            });

  double best_power = 0;
  for (const Candidate& c : candidates) {
    AdcSpec spec = AdcSpec::paper_40nm();
    spec.node_nm = target.node_nm;
    spec.num_slices = c.slices;
    spec.bandwidth_hz = target.bandwidth_hz;
    spec.fs_hz = 2.0 * target.bandwidth_hz * c.osr;
    spec.seed = opts.seed;

    CandidateResult cr;
    cr.spec = spec;
    cr.valid = spec.validate().empty();
    if (cr.valid) {
      // Prune: the power prior grows monotonically within the sorted list
      // only approximately, so only skip when a met design was strictly
      // cheaper in prior terms than this candidate.
      Flow flow(opts.exec);
      SimulationOptions sim;
      sim.n_samples = opts.n_samples;
      sim.fin_target_hz = target.bandwidth_hz / 5.0;
      const auto run = flow.sim_run(spec, sim);
      cr.sndr_db = run->sndr.sndr_db;
      cr.power_w = run->power.total_w();
      cr.meets = cr.sndr_db >= target.min_sndr_db + target.margin_db;
      if (cr.meets &&
          (!result.best.has_value() || cr.power_w < best_power)) {
        result.best = spec;
        best_power = cr.power_w;
        result.best_sndr_db = cr.sndr_db;
      }
    }
    result.evaluated.push_back(std::move(cr));
  }
  result.best_power_w = best_power;
  return result;
}

}  // namespace vcoadc::core
