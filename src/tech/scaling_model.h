// Scaling trend analysis on top of the TechDatabase.
//
// Supports the Fig. 1 reproduction (trend tables and fitted exponents) and
// the Sec. 4 design-migration experiment (mapping a design between nodes by
// transforming cells into their closest-size counterparts).
#pragma once

#include <string>
#include <vector>

#include "tech/tech_node.h"

namespace vcoadc::tech {

/// Result of a power-law fit y = c * L^alpha over the node table.
struct TrendFit {
  double exponent = 0;  ///< alpha
  double coeff = 0;     ///< c (y at L = 1 nm)
  double r_squared = 0; ///< goodness of fit in log-log space
};

/// Fits y(L) = c * L^alpha through (gate_length_nm, value) samples.
TrendFit fit_power_law(const std::vector<double>& gate_lengths_nm,
                       const std::vector<double>& values);

/// One row of the Fig. 1 trend table.
struct TrendRow {
  double gate_length_nm = 0;
  double vdd = 0;
  double intrinsic_gain = 0;
  double ft_ghz = 0;
  double fo4_ps = 0;
};

/// The Fig. 1a/1b data across the whole node table.
std::vector<TrendRow> scaling_trend(const TechDatabase& db);

/// Summary of how voltage-domain versus time-domain design headroom moves
/// with scaling: VD headroom ~ VDD * intrinsic_gain, TD resolution ~ 1/FO4.
struct DomainHeadroom {
  double gate_length_nm = 0;
  double vd_headroom = 0;      ///< VDD * gain, normalized to the 500 nm node
  double td_resolution = 0;    ///< (1/FO4), normalized to the 500 nm node
};
std::vector<DomainHeadroom> domain_headroom_trend(const TechDatabase& db);

/// Design migration between nodes (Sec. 4): "done automatically by
/// transforming the standard cells into their closest-size counterparts."
/// Given a cell drive strength available at the source node, returns the
/// closest available strength at the target node.
int closest_drive_strength(int source_strength,
                           const std::vector<int>& target_strengths);

}  // namespace vcoadc::tech
