// Technology node model.
//
// The paper's entire motivation (Sec. 1, Fig. 1) is the divergence of two
// scaling trends: voltage-domain headroom (supply voltage, transistor
// intrinsic gain) collapses with CMOS scaling, while time-domain resolution
// (f_T, FO4 inverter delay) improves. We encode those trends as a per-node
// parameter bundle from which everything downstream is derived:
//   * the behavioral simulator's VCO free-running frequency and tuning gain,
//   * the standard-cell library geometry for layout synthesis,
//   * the switching-energy terms of the power model.
//
// Since we have no foundry PDK, the numbers are ITRS-trend calibrated
// (see DESIGN.md, substitution table); anchor points at 500 nm / 180 nm /
// 40 nm / 22 nm match the figures quoted in the paper's introduction.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace vcoadc::tech {

/// One CMOS process node's electrical and geometric parameters.
///
/// All values are in base SI units unless the member name says otherwise.
struct TechNode {
  std::string name;          ///< e.g. "40nm"
  double gate_length_nm = 0; ///< drawn gate length

  // --- Fig. 1a quantities (voltage-domain scaling) ---
  double vdd = 0;            ///< nominal digital supply [V]
  double intrinsic_gain = 0; ///< gm*ro of a minimum device

  // --- Fig. 1b quantities (time-domain scaling) ---
  double ft_hz = 0;          ///< transit frequency [Hz]
  double fo4_delay_s = 0;    ///< fan-out-of-4 inverter delay [s]

  // --- derived / library-level quantities ---
  double m1_pitch_m = 0;          ///< metal-1 routing pitch [m]
  double cell_row_height_m = 0;   ///< standard-cell row height [m]
  double min_inv_input_cap_f = 0; ///< input capacitance of a 1x inverter [F]
  double gate_leakage_w = 0;      ///< leakage per minimum gate at nominal VDD [W]
  double ring_stage_delay_s = 0;  ///< delay of one VCO ring stage at mid Vctrl [s]
  double poly_sheet_ohms = 0;     ///< low-resistivity resistor sheet rho [ohm/sq]
  double hires_sheet_ohms = 0;    ///< high-resistivity resistor sheet rho [ohm/sq]
  double comparator_offset_sigma_v = 0; ///< mismatch-driven offset sigma [V]

  /// Maximum ring oscillation frequency of an `n_stages` pseudo-differential
  /// ring at the top of the tuning range.
  double max_ring_freq_hz(int n_stages) const;

  /// Switching energy of a gate with input capacitance `cap_f` at this
  /// node's VDD: E = C * VDD^2 (one full charge/discharge cycle).
  double switching_energy_j(double cap_f) const;
};

/// The node database covering the paper's Fig. 1 sweep (500 nm .. 22 nm).
class TechDatabase {
 public:
  /// Builds the default ITRS-trend-calibrated database.
  static const TechDatabase& standard();

  /// Exact node lookup by drawn gate length in nm (e.g. 40, 180).
  /// Returns std::nullopt if the node is not in the table.
  std::optional<TechNode> find(double gate_length_nm) const;

  /// Exact node lookup. An absent node never aborts: it warns on stderr
  /// and degrades to interpolate() (the newest node for non-positive or
  /// non-finite lengths). Callers needing a hard error validate first
  /// (find() or core::validate_spec).
  TechNode at(double gate_length_nm) const;

  /// Log-log interpolated node for arbitrary gate lengths within the
  /// table's range (used by the scaling-trend benches).
  TechNode interpolate(double gate_length_nm) const;

  /// All nodes, sorted from oldest (largest L) to newest.
  const std::vector<TechNode>& nodes() const { return nodes_; }

 private:
  std::vector<TechNode> nodes_;
};

}  // namespace vcoadc::tech
