#include "tech/tech_node.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vcoadc::tech {
namespace {

// Anchor rows of the node database. Fig. 1 anchors:
//   500 nm: gain 180, VDD 5 V, fT 16 GHz, FO4 140 ps
//   22 nm:  gain 6,   VDD 1 V, fT 400 GHz, FO4 6 ps
// Intermediate rows follow ITRS trend curves. Geometry / electrical
// derivations:
//   M1 pitch        ~ 3.5 * L
//   row height      = 9 tracks
//   1x inverter Cin ~ 12 aF per nm of L (W ~ 4L device, ~2 fF/um gate cap)
//   ring stage delay ~ FO4 / 3 at mid control voltage
//   leakage grows as L shrinks (gate tunneling + subthreshold)
struct Row {
  double l_nm, vdd, gain, ft_ghz, fo4_ps, leak_nw, offset_mv;
};
constexpr Row kRows[] = {
    // L     VDD   gain  fT     FO4    leak   sigma_os
    {500.0, 5.00, 180.0, 16.0, 140.0, 0.001, 2.0},
    {350.0, 3.30, 135.0, 22.0, 105.0, 0.002, 2.4},
    {250.0, 2.50, 100.0, 32.0, 78.0, 0.005, 2.8},
    {180.0, 1.80, 70.0, 48.0, 55.0, 0.01, 3.2},
    {130.0, 1.30, 45.0, 75.0, 38.0, 0.05, 3.8},
    {90.0, 1.20, 30.0, 120.0, 25.0, 0.2, 4.5},
    {65.0, 1.10, 20.0, 180.0, 17.0, 0.6, 5.2},
    {45.0, 1.10, 12.0, 280.0, 10.5, 1.5, 6.0},
    {40.0, 1.10, 11.0, 300.0, 9.5, 1.8, 6.2},
    {32.0, 1.00, 8.0, 350.0, 7.5, 2.5, 6.8},
    {22.0, 1.00, 6.0, 400.0, 6.0, 4.0, 7.5},
};

TechNode make_node(const Row& r) {
  TechNode n;
  char name[32];
  std::snprintf(name, sizeof(name), "%.0fnm", r.l_nm);
  n.name = name;
  n.gate_length_nm = r.l_nm;
  n.vdd = r.vdd;
  n.intrinsic_gain = r.gain;
  n.ft_hz = r.ft_ghz * 1e9;
  n.fo4_delay_s = r.fo4_ps * 1e-12;
  n.m1_pitch_m = 3.5 * r.l_nm * 1e-9;
  n.cell_row_height_m = 9.0 * n.m1_pitch_m;
  n.min_inv_input_cap_f = 12e-18 * r.l_nm;
  n.gate_leakage_w = r.leak_nw * 1e-9;
  n.ring_stage_delay_s = n.fo4_delay_s / 3.0;
  // Poly resistor sheet resistance is roughly node independent; the high-res
  // implant module gives ~10x the low-res sheet (Fig. 11: 1k vs 11k cells).
  n.poly_sheet_ohms = 100.0;
  n.hires_sheet_ohms = 1100.0;
  n.comparator_offset_sigma_v = r.offset_mv * 1e-3;
  return n;
}

}  // namespace

double TechNode::max_ring_freq_hz(int n_stages) const {
  // A ring of n pseudo-differential stages completes one period after the
  // edge traverses all stages twice (differential ring, no inversion needed
  // per lap for the cross-coupled-inverter cell of Fig. 5).
  return 1.0 / (2.0 * n_stages * ring_stage_delay_s);
}

double TechNode::switching_energy_j(double cap_f) const {
  return cap_f * vdd * vdd;
}

const TechDatabase& TechDatabase::standard() {
  static const TechDatabase db = [] {
    TechDatabase d;
    for (const Row& r : kRows) d.nodes_.push_back(make_node(r));
    return d;
  }();
  return db;
}

std::optional<TechNode> TechDatabase::find(double gate_length_nm) const {
  for (const TechNode& n : nodes_) {
    if (n.gate_length_nm == gate_length_nm) return n;
  }
  return std::nullopt;
}

TechNode TechDatabase::at(double gate_length_nm) const {
  if (auto n = find(gate_length_nm)) return *n;
  // Degraded fallback instead of an abort: callers that need a hard error
  // validate the node first (AdcSpec::validate / core::validate_spec); this
  // path only keeps describe()-style rendering alive on a rejected spec.
  std::fprintf(stderr,
               "TechDatabase: unknown node %g nm; substituting nearest "
               "(validate the spec to reject it upstream)\n",
               gate_length_nm);
  if (!(std::isfinite(gate_length_nm) && gate_length_nm > 0)) {
    return nodes_.back();
  }
  return interpolate(gate_length_nm);
}

TechNode TechDatabase::interpolate(double gate_length_nm) const {
  if (auto exact = find(gate_length_nm)) return *exact;
  // Clamp to range, then log-log interpolate between bracketing rows. The
  // nodes_ vector is sorted by descending L.
  const TechNode& oldest = nodes_.front();
  const TechNode& newest = nodes_.back();
  if (gate_length_nm >= oldest.gate_length_nm) return oldest;
  if (gate_length_nm <= newest.gate_length_nm) return newest;
  std::size_t hi = 1;
  while (hi < nodes_.size() && nodes_[hi].gate_length_nm > gate_length_nm) ++hi;
  const TechNode& a = nodes_[hi - 1];  // larger L
  const TechNode& b = nodes_[hi];      // smaller L
  const double t = (std::log(gate_length_nm) - std::log(a.gate_length_nm)) /
                   (std::log(b.gate_length_nm) - std::log(a.gate_length_nm));
  auto lerp_log = [t](double x, double y) {
    return std::exp(std::log(x) + t * (std::log(y) - std::log(x)));
  };
  TechNode n;
  char name[32];
  std::snprintf(name, sizeof(name), "%.0fnm", gate_length_nm);
  n.name = name;
  n.gate_length_nm = gate_length_nm;
  n.vdd = lerp_log(a.vdd, b.vdd);
  n.intrinsic_gain = lerp_log(a.intrinsic_gain, b.intrinsic_gain);
  n.ft_hz = lerp_log(a.ft_hz, b.ft_hz);
  n.fo4_delay_s = lerp_log(a.fo4_delay_s, b.fo4_delay_s);
  n.m1_pitch_m = lerp_log(a.m1_pitch_m, b.m1_pitch_m);
  n.cell_row_height_m = lerp_log(a.cell_row_height_m, b.cell_row_height_m);
  n.min_inv_input_cap_f = lerp_log(a.min_inv_input_cap_f, b.min_inv_input_cap_f);
  n.gate_leakage_w = lerp_log(a.gate_leakage_w, b.gate_leakage_w);
  n.ring_stage_delay_s = lerp_log(a.ring_stage_delay_s, b.ring_stage_delay_s);
  n.poly_sheet_ohms = lerp_log(a.poly_sheet_ohms, b.poly_sheet_ohms);
  n.hires_sheet_ohms = lerp_log(a.hires_sheet_ohms, b.hires_sheet_ohms);
  n.comparator_offset_sigma_v =
      lerp_log(a.comparator_offset_sigma_v, b.comparator_offset_sigma_v);
  return n;
}

}  // namespace vcoadc::tech
