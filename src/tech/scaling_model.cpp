#include "tech/scaling_model.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace vcoadc::tech {

TrendFit fit_power_law(const std::vector<double>& gate_lengths_nm,
                       const std::vector<double>& values) {
  TrendFit fit;
  const std::size_t n = std::min(gate_lengths_nm.size(), values.size());
  if (n < 2) return fit;
  // Least squares on (log L, log y).
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::log(gate_lengths_nm[i]);
    const double y = std::log(values[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.exponent = (dn * sxy - sx * sy) / denom;
  fit.coeff = std::exp((sy - fit.exponent * sx) / dn);
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = std::log(fit.coeff) + fit.exponent * std::log(gate_lengths_nm[i]);
    const double r = std::log(values[i]) - pred;
    ss_res += r * r;
  }
  fit.r_squared = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<TrendRow> scaling_trend(const TechDatabase& db) {
  std::vector<TrendRow> rows;
  rows.reserve(db.nodes().size());
  for (const TechNode& n : db.nodes()) {
    rows.push_back({n.gate_length_nm, n.vdd, n.intrinsic_gain, n.ft_hz / 1e9,
                    n.fo4_delay_s / 1e-12});
  }
  return rows;
}

std::vector<DomainHeadroom> domain_headroom_trend(const TechDatabase& db) {
  std::vector<DomainHeadroom> rows;
  if (db.nodes().empty()) return rows;
  const TechNode& ref = db.nodes().front();  // oldest node (500 nm)
  const double vd_ref = ref.vdd * ref.intrinsic_gain;
  const double td_ref = 1.0 / ref.fo4_delay_s;
  for (const TechNode& n : db.nodes()) {
    rows.push_back({n.gate_length_nm, (n.vdd * n.intrinsic_gain) / vd_ref,
                    (1.0 / n.fo4_delay_s) / td_ref});
  }
  return rows;
}

int closest_drive_strength(int source_strength,
                           const std::vector<int>& target_strengths) {
  int best = source_strength;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int s : target_strengths) {
    // Compare in log space: a 2x cell is "as far" from 1x as 4x is from 2x.
    const double d = std::fabs(std::log2(static_cast<double>(s)) -
                               std::log2(static_cast<double>(source_strength)));
    if (d < best_dist) {
      best_dist = d;
      best = s;
    }
  }
  return best;
}

}  // namespace vcoadc::tech
