// Spectrum analysis for delta-sigma ADC output streams.
//
// Produces everything the paper's evaluation section reads off a spectrum:
//   * the dBFS periodogram itself (Fig. 17 / Fig. 18),
//   * SNDR / SNR / SFDR / THD / ENOB over a signal bandwidth (Table 3/4),
//   * the fitted noise-shaping slope in dB/decade (the "20dB/dec" annotation
//     in Fig. 17),
//   * an idle-tone detector (the "no idle tones are observed" claim of
//     Fig. 18).
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/window.h"

namespace vcoadc::dsp {

/// One-sided amplitude spectrum in dB relative to full scale.
struct Spectrum {
  std::vector<double> freq_hz;   ///< bin centre frequencies, DC..fs/2
  std::vector<double> power;     ///< linear tone power per bin (FS sine = 1.0)
  std::vector<double> dbfs;      ///< 10*log10(power), floored at `floor_dbfs`
  double fs_hz = 0;
  double bin_hz = 0;
  double enbw_bins = 1.0;        ///< window ENBW, for noise density readings
  WindowKind window = WindowKind::kHann;
  static constexpr double kFloorDbfs = -200.0;
};

/// Computes the one-sided periodogram of `x` (length must be a power of two)
/// with the given window. `full_scale` is the amplitude of a full-scale sine
/// (power is normalized so that such a sine reads 0 dBFS).
Spectrum compute_spectrum(const std::vector<double>& x, double fs_hz,
                          double full_scale, WindowKind window);

/// Tone/noise decomposition of a spectrum over a signal band.
struct SndrReport {
  double fundamental_hz = 0;
  double fundamental_dbfs = 0;
  double signal_power = 0;       ///< linear
  double nad_power = 0;          ///< noise+distortion power in band (linear)
  double noise_power = 0;        ///< in-band noise excluding harmonics
  double distortion_power = 0;   ///< in-band harmonic power (H2..H7)
  double sndr_db = 0;
  double snr_db = 0;
  double thd_db = 0;             ///< relative to the fundamental
  double sfdr_db = 0;            ///< fundamental to worst in-band spur
  double enob = 0;
};

/// Analyses `spec` over [f_low, bw_hz]. The fundamental is the strongest bin
/// in band (or the bin nearest `expected_tone_hz` when > 0). Leakage windows
/// around the fundamental and harmonics are attributed per the window kind.
SndrReport analyze_sndr(const Spectrum& spec, double bw_hz,
                        double expected_tone_hz = 0.0);

/// Linear fit of the noise floor (dB vs log10 f) between f_lo and f_hi,
/// excluding tone bins; returns slope in dB/decade. For a 1st-order
/// delta-sigma modulator this is ~+20 dB/dec above the signal band.
struct SlopeFit {
  double db_per_decade = 0;
  double r_squared = 0;
};
SlopeFit fit_noise_slope(const Spectrum& spec, double f_lo, double f_hi);

/// Idle-tone scan: looks for discrete spurs in [f_lo, f_hi] that stand more
/// than `threshold_db` above the local median noise floor, excluding the
/// fundamental/harmonic windows of `report`.
struct IdleTone {
  double freq_hz = 0;
  double dbfs = 0;
  double above_floor_db = 0;
};
std::vector<IdleTone> find_idle_tones(const Spectrum& spec,
                                      const SndrReport& report, double f_lo,
                                      double f_hi, double threshold_db = 10.0);

/// In-band integrated noise density in dBFS/NBW terms: total in-band noise
/// power expressed back as dB. Convenience for tabulating sweeps.
double inband_noise_dbfs(const Spectrum& spec, double bw_hz);

}  // namespace vcoadc::dsp
