// Radix-2 iterative FFT, implemented from scratch (no external DSP
// dependency). Used by the spectrum analyzer that reproduces the paper's
// Fig. 17/18 output spectra and SNDR numbers.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vcoadc::dsp {

using Complex = std::complex<double>;

/// True if n is a power of two (and non-zero).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place decimation-in-time radix-2 FFT. `data.size()` must be a power of
/// two. Forward transform: X[k] = sum_n x[n] e^{-j 2 pi k n / N}.
void fft_in_place(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_in_place(std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum of
/// length equal to input length (which must be a power of two).
std::vector<Complex> fft_real(const std::vector<double>& x);

/// Single-bin DFT (Goertzel). Returns X[k] for the given bin; useful for
/// cheap coherent tone measurements without a full transform.
Complex goertzel(const std::vector<double>& x, std::size_t bin);

}  // namespace vcoadc::dsp
