// Radix-2 FFT, implemented from scratch (no external DSP dependency). Used
// by the spectrum analyzer that reproduces the paper's Fig. 17/18 output
// spectra and SNDR numbers.
//
// Two layers:
//   * FftPlan / RealFftPlan - reusable plans holding the precomputed
//     bit-reversal permutation and twiddle tables for one transform size.
//     Building a plan is O(n); executing it touches no trig and performs
//     no allocation. Spectrum analysis over many Monte-Carlo draws reuses
//     one plan per (thread, size) via the of() caches.
//   * The free functions below (fft_in_place, ifft_in_place, fft_real,
//     goertzel) - the original convenience API, now routed through the
//     cached plans.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vcoadc::dsp {

using Complex = std::complex<double>;

/// True if n is a power of two (and non-zero).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// Precomputed radix-2 decimation-in-time plan for complex transforms of one
/// fixed power-of-two size. Immutable after construction, so a single plan
/// may be shared by multiple threads; of() hands out one per thread anyway
/// to keep the cache lock-free.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform: X[k] = sum_n x[n] e^{-j 2 pi k n / N}.
  /// `data` must hold size() elements.
  void forward(Complex* data) const;

  /// In-place inverse transform (includes the 1/N normalization).
  void inverse(Complex* data) const;

  /// Per-thread plan cache: returns a reference valid for the thread's
  /// lifetime. Repeated calls with the same n are O(1) and lock-free.
  static const FftPlan& of(std::size_t n);

 private:
  std::size_t n_;
  /// Bit-reversed index of each position (identity entries included so the
  /// permutation loop is branch-light).
  std::vector<std::uint32_t> bitrev_;
  /// Twiddles e^{-j 2 pi k / n} for k in [0, n/2), interleaved re/im. A
  /// stage of length `len` reads every (n/len)-th entry.
  std::vector<double> twiddle_;
};

/// Real-input forward FFT of one fixed power-of-two size n (n >= 2): runs a
/// half-length complex transform on the even/odd packing and untangles, for
/// roughly half the work of the complex path. Output is the one-sided
/// spectrum, bins 0..n/2 inclusive (DC through Nyquist); the remaining bins
/// are its conjugate mirror.
class RealFftPlan {
 public:
  explicit RealFftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  /// Number of output bins: n/2 + 1.
  std::size_t out_size() const { return n_ / 2 + 1; }

  /// `x` holds size() reals; `out` receives out_size() bins. `out` is also
  /// used as the packing scratch, so the transform allocates nothing.
  void forward(const double* x, Complex* out) const;

  /// Convenience overload with size checking.
  void forward(const std::vector<double>& x, std::vector<Complex>& out) const;

  /// Per-thread plan cache, as FftPlan::of().
  static const RealFftPlan& of(std::size_t n);

 private:
  std::size_t n_;
  FftPlan half_;  // complex plan of size n/2
  /// Untangling twiddles e^{-j 2 pi k / n} for k in [0, n/4], interleaved.
  std::vector<double> untangle_;
};

/// In-place decimation-in-time radix-2 FFT. `data.size()` must be a power of
/// two. Forward transform: X[k] = sum_n x[n] e^{-j 2 pi k n / N}.
void fft_in_place(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_in_place(std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum of
/// length equal to input length (which must be a power of two). Computed
/// through RealFftPlan with the upper half mirrored by conjugate symmetry.
std::vector<Complex> fft_real(const std::vector<double>& x);

/// Single-bin DFT (Goertzel). Returns X[k] for the given bin; useful for
/// cheap coherent tone measurements without a full transform.
Complex goertzel(const std::vector<double>& x, std::size_t bin);

}  // namespace vcoadc::dsp
