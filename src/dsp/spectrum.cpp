#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dsp/fft.h"
#include "util/units.h"

namespace vcoadc::dsp {
namespace {

// Sums linear power of bins [k - span, k + span] clamped to (0, n-1],
// zeroing a visited mask so a bin is never double counted.
double take_power(const Spectrum& spec, std::vector<char>& taken,
                  std::size_t k, int span) {
  double p = 0;
  const std::size_t n = spec.power.size();
  const std::size_t lo = (k > static_cast<std::size_t>(span))
                             ? k - static_cast<std::size_t>(span)
                             : 1;  // skip DC
  const std::size_t hi = std::min(n - 1, k + static_cast<std::size_t>(span));
  for (std::size_t i = lo; i <= hi; ++i) {
    if (!taken[i]) {
      p += spec.power[i];
      taken[i] = 1;
    }
  }
  return p;
}

// Spectrum analysis runs once per Monte-Carlo draw with a fixed window kind
// and record length, so the window samples (and their energy sum) and the
// windowed-input / FFT-bin scratch buffers are cached per thread. Each worker
// thread gets its own copy; no locking, no per-call allocation once warm.
struct SpectrumScratch {
  WindowKind kind = WindowKind::kHann;
  std::size_t n = 0;
  std::vector<double> window;
  double sum_w2 = 0;
  std::vector<double> xw;         // mean-removed, windowed input
  std::vector<Complex> bins;      // one-sided FFT output (n/2 + 1 bins)

  void prepare(WindowKind k, std::size_t len) {
    if (kind != k || n != len || window.size() != len) {
      kind = k;
      n = len;
      window = make_window(k, len);
      sum_w2 = 0;
      for (double v : window) sum_w2 += v * v;
    }
    xw.resize(len);
    bins.resize(len / 2 + 1);
  }
};

SpectrumScratch& spectrum_scratch() {
  static thread_local SpectrumScratch scratch;
  return scratch;
}

}  // namespace

Spectrum compute_spectrum(const std::vector<double>& x, double fs_hz,
                          double full_scale, WindowKind window) {
  // The FFT plan requires a power-of-two record; the assert that used to
  // guard this is compiled out of release builds, leaving UB. Degrade to
  // an empty spectrum instead (analyze_sndr & friends already reject it).
  if (x.empty() || !is_power_of_two(x.size()) ||
      !(std::isfinite(full_scale) && full_scale > 0)) {
    std::fprintf(stderr,
                 "vcoadc: [error] spectrum: record length %zu / full scale "
                 "%g unusable (need power-of-two samples, positive finite "
                 "full scale)\n",
                 x.size(), full_scale);
    Spectrum empty;
    empty.fs_hz = fs_hz;
    empty.window = window;
    return empty;
  }
  const std::size_t n = x.size();
  SpectrumScratch& sc = spectrum_scratch();
  sc.prepare(window, n);
  const std::vector<double>& w = sc.window;

  // Remove the mean before windowing so DC leakage does not mask the
  // low-frequency noise floor the shaping analysis depends on.
  double mean = 0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);

  // Real-input plan: half-length complex transform + untangle, one-sided
  // output. The spectrum only ever reads bins [0, n/2), so nothing is lost.
  for (std::size_t i = 0; i < n; ++i) sc.xw[i] = (x[i] - mean) * w[i];
  const std::vector<Complex>& data = sc.bins;
  if (n >= 2) {
    RealFftPlan::of(n).forward(sc.xw.data(), sc.bins.data());
  } else if (n == 1) {
    sc.bins[0] = Complex(sc.xw[0], 0.0);
  }

  Spectrum spec;
  spec.fs_hz = fs_hz;
  spec.bin_hz = fs_hz / static_cast<double>(n);
  spec.window = window;
  spec.enbw_bins = enbw_bins(w);
  const std::size_t half = n / 2;
  spec.freq_hz.resize(half);
  spec.power.resize(half);
  spec.dbfs.resize(half);

  // Energy-calibrated scaling: per-bin powers are defined so that SUMMING
  // the bins of a tone's leakage lobe yields the tone power relative to a
  // full-scale sine (Parseval: sum over the one-sided lobe of a coherent
  // tone of amplitude A is N * A^2/4 * sum(w^2)). The same scale makes
  // band-integrated noise read correctly relative to FS tone power.
  const double scale =
      4.0 / (static_cast<double>(n) * sc.sum_w2 * full_scale * full_scale);
  for (std::size_t k = 0; k < half; ++k) {
    spec.freq_hz[k] = spec.bin_hz * static_cast<double>(k);
    spec.power[k] = std::norm(data[k]) * scale;
    spec.dbfs[k] =
        std::max(Spectrum::kFloorDbfs, util::db_power(spec.power[k]));
  }
  // DC bin was mean-removed; report it at the floor.
  if (!spec.power.empty()) {
    spec.power[0] = 0.0;
    spec.dbfs[0] = Spectrum::kFloorDbfs;
  }
  return spec;
}

SndrReport analyze_sndr(const Spectrum& spec, double bw_hz,
                        double expected_tone_hz) {
  SndrReport rep;
  const std::size_t n = spec.power.size();
  if (n < 4 || spec.bin_hz <= 0) return rep;
  const std::size_t bw_bin =
      std::min<std::size_t>(n - 1, static_cast<std::size_t>(bw_hz / spec.bin_hz));
  const int span = leakage_bins(spec.window);

  // Locate the fundamental.
  std::size_t kf = 1;
  if (expected_tone_hz > 0) {
    kf = static_cast<std::size_t>(std::lround(expected_tone_hz / spec.bin_hz));
    kf = std::clamp<std::size_t>(kf, 1, n - 1);
    // Snap to the local maximum within the leakage span.
    std::size_t best = kf;
    const std::size_t lo = (kf > static_cast<std::size_t>(span)) ? kf - span : 1;
    const std::size_t hi = std::min(n - 1, kf + static_cast<std::size_t>(span));
    for (std::size_t i = lo; i <= hi; ++i) {
      if (spec.power[i] > spec.power[best]) best = i;
    }
    kf = best;
  } else {
    for (std::size_t i = 2; i <= bw_bin; ++i) {
      if (spec.power[i] > spec.power[kf]) kf = i;
    }
  }

  std::vector<char> taken(n, 0);
  taken[0] = 1;
  rep.signal_power = take_power(spec, taken, kf, span);
  rep.fundamental_hz = spec.freq_hz[kf];
  rep.fundamental_dbfs = util::db_power(std::max(rep.signal_power, 1e-30));

  // Harmonics H2..H7 folded into the first Nyquist zone. Each in-band
  // harmonic is also an SFDR spur candidate.
  rep.distortion_power = 0;
  double worst_spur = 0;
  for (int h = 2; h <= 7; ++h) {
    long long k = static_cast<long long>(kf) * h;
    const long long nfft = static_cast<long long>(n) * 2;
    k %= nfft;
    // C++ % truncates toward zero, so a negative pre-modulo k (possible
    // when a caller aliases the fundamental below DC) stays negative and
    // the Nyquist fold below would index far out of band. Normalize into
    // [0, nfft) first; a near-DC fundamental then folds its harmonics to
    // the correct low bins instead of being skipped or mis-binned.
    if (k < 0) k += nfft;
    if (k > nfft / 2) k = nfft - k;
    if (k <= 0 || static_cast<std::size_t>(k) >= n) continue;
    const double p = take_power(spec, taken, static_cast<std::size_t>(k), span);
    if (static_cast<std::size_t>(k) <= bw_bin) {
      rep.distortion_power += p;
      worst_spur = std::max(worst_spur, p);
    }
  }

  // Remaining in-band bins are noise; single bins are SFDR spur candidates.
  rep.noise_power = 0;
  for (std::size_t i = 1; i <= bw_bin; ++i) {
    if (taken[i]) continue;
    rep.noise_power += spec.power[i];
    worst_spur = std::max(worst_spur, spec.power[i]);
  }
  rep.nad_power = rep.noise_power + rep.distortion_power;

  const double eps = 1e-30;
  rep.sndr_db = util::db_power(rep.signal_power / std::max(rep.nad_power, eps));
  rep.snr_db = util::db_power(rep.signal_power / std::max(rep.noise_power, eps));
  rep.thd_db =
      util::db_power(std::max(rep.distortion_power, eps) / rep.signal_power);
  rep.sfdr_db = util::db_power(rep.signal_power / std::max(worst_spur, eps));
  rep.enob = util::enob_from_sndr_db(rep.sndr_db);
  return rep;
}

SlopeFit fit_noise_slope(const Spectrum& spec, double f_lo, double f_hi) {
  SlopeFit fit;
  const std::size_t n = spec.power.size();
  if (n < 8) return fit;

  // Median-smooth the dB spectrum in log-spaced buckets, then fit a line
  // (dB vs log10 f). Median per bucket suppresses tones.
  constexpr int kBuckets = 24;
  std::vector<double> xs, ys;
  const double llo = std::log10(std::max(f_lo, spec.bin_hz));
  const double lhi = std::log10(std::max(f_hi, f_lo * 1.01));
  for (int b = 0; b < kBuckets; ++b) {
    const double a = llo + (lhi - llo) * b / kBuckets;
    const double c = llo + (lhi - llo) * (b + 1) / kBuckets;
    std::vector<double> vals;
    for (std::size_t i = 1; i < n; ++i) {
      const double lf = std::log10(spec.freq_hz[i]);
      if (lf >= a && lf < c) vals.push_back(spec.dbfs[i]);
    }
    if (vals.size() < 3) continue;
    std::nth_element(vals.begin(), vals.begin() + vals.size() / 2, vals.end());
    xs.push_back((a + c) / 2);
    ys.push_back(vals[vals.size() / 2]);
  }
  if (xs.size() < 3) return fit;

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double m = static_cast<double>(xs.size());
  const double denom = m * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.db_per_decade = (m * sxy - sx * sy) / denom;
  const double ss_tot = syy - sy * sy / m;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = (sy - fit.db_per_decade * sx) / m + fit.db_per_decade * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
  }
  fit.r_squared = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<IdleTone> find_idle_tones(const Spectrum& spec,
                                      const SndrReport& report, double f_lo,
                                      double f_hi, double threshold_db) {
  std::vector<IdleTone> tones;
  const std::size_t n = spec.power.size();
  if (n < 16) return tones;
  const int span = leakage_bins(spec.window);

  auto in_harmonic_window = [&](std::size_t i) {
    if (report.fundamental_hz <= 0) return false;
    for (int h = 1; h <= 7; ++h) {
      const double fh = report.fundamental_hz * h;
      if (std::fabs(spec.freq_hz[i] - fh) <= (span + 1) * spec.bin_hz) {
        return true;
      }
    }
    return false;
  };

  // Sliding local median over +/- 32 bins as the floor estimate.
  constexpr int kHalfWin = 32;
  for (std::size_t i = 1; i < n; ++i) {
    if (spec.freq_hz[i] < f_lo || spec.freq_hz[i] > f_hi) continue;
    if (in_harmonic_window(i)) continue;
    const std::size_t lo = (i > kHalfWin) ? i - kHalfWin : 1;
    const std::size_t hi = std::min(n - 1, i + kHalfWin);
    std::vector<double> local;
    local.reserve(hi - lo + 1);
    for (std::size_t k = lo; k <= hi; ++k) {
      if (k != i) local.push_back(spec.dbfs[k]);
    }
    std::nth_element(local.begin(), local.begin() + local.size() / 2,
                     local.end());
    const double floor_db = local[local.size() / 2];
    const double above = spec.dbfs[i] - floor_db;
    if (above > threshold_db) {
      tones.push_back({spec.freq_hz[i], spec.dbfs[i], above});
    }
  }
  return tones;
}

double inband_noise_dbfs(const Spectrum& spec, double bw_hz) {
  double p = 0;
  for (std::size_t i = 1; i < spec.power.size(); ++i) {
    if (spec.freq_hz[i] > bw_hz) break;
    p += spec.power[i];
  }
  return util::db_power(std::max(p, 1e-30));
}

}  // namespace vcoadc::dsp
