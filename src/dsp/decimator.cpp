#include "dsp/decimator.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace vcoadc::dsp {

CicDecimator::CicDecimator(int order, int rate)
    : order_(order),
      rate_(rate),
      integrators_(static_cast<std::size_t>(order), 0.0),
      combs_(static_cast<std::size_t>(order), 0.0) {
  assert(order >= 1 && rate >= 1);
}

double CicDecimator::dc_gain() const {
  return std::pow(static_cast<double>(rate_), order_);
}

bool CicDecimator::push(double in, double* out) {
  double acc = in;
  for (double& integ : integrators_) {
    integ += acc;
    acc = integ;
  }
  if (++phase_ < rate_) return false;
  phase_ = 0;
  for (double& comb : combs_) {
    const double prev = comb;
    comb = acc;
    acc -= prev;
  }
  *out = acc / dc_gain();
  return true;
}

std::vector<double> CicDecimator::process(const std::vector<double>& in) {
  std::vector<double> out;
  out.reserve(in.size() / static_cast<std::size_t>(rate_) + 1);
  double y = 0;
  for (double v : in) {
    if (push(v, &y)) out.push_back(y);
  }
  return out;
}

std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff) {
  assert(taps >= 3 && cutoff > 0.0 && cutoff < 0.5);
  std::vector<double> h(taps);
  const double m = static_cast<double>(taps - 1);
  double sum = 0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double x = static_cast<double>(i) - m / 2.0;
    const double sinc = (x == 0.0)
                            ? 2.0 * cutoff
                            : std::sin(2.0 * std::numbers::pi * cutoff * x) /
                                  (std::numbers::pi * x);
    const double hann =
        0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / m);
    h[i] = sinc * hann;
    sum += h[i];
  }
  for (double& v : h) v /= sum;  // unity DC gain
  return h;
}

std::vector<double> fir_decimate(const std::vector<double>& in,
                                 const std::vector<double>& taps, int rate) {
  assert(rate >= 1);
  std::vector<double> out;
  if (in.empty()) return out;
  out.reserve(in.size() / static_cast<std::size_t>(rate) + 1);
  for (std::size_t n = 0; n < in.size(); n += static_cast<std::size_t>(rate)) {
    double acc = 0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      if (k > n) break;
      acc += taps[k] * in[n - k];
    }
    out.push_back(acc);
  }
  return out;
}

std::vector<double> decimate_chain(const std::vector<double>& modulator_out,
                                   int cic_order, int cic_rate, int fir_rate,
                                   std::size_t fir_taps) {
  CicDecimator cic(cic_order, cic_rate);
  const std::vector<double> mid = cic.process(modulator_out);
  if (fir_rate <= 1) return mid;
  // Cut off just below the post-decimation Nyquist, leaving transition room.
  const double cutoff = 0.45 / static_cast<double>(fir_rate);
  const std::vector<double> taps = design_lowpass_fir(fir_taps, cutoff);
  return fir_decimate(mid, taps, fir_rate);
}

}  // namespace vcoadc::dsp
