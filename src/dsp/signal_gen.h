// Test-signal generation for simulations and benches.
//
// Coherent sampling helpers ensure the FFT sees an integer number of signal
// periods (with an odd/co-prime cycle count so the tone never lands on the
// same modulator phase twice), which is the standard ADC test practice the
// paper's spectra imply.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace vcoadc::dsp {

/// A continuous-time scalar signal source.
using SignalFn = std::function<double(double /*t_seconds*/)>;

/// Picks the number of whole cycles k (odd, near `target_hz * n / fs`) such
/// that fin = k * fs / n is coherent with an n-point capture.
std::size_t coherent_cycles(double target_hz, double fs_hz, std::size_t n);

/// The coherent frequency corresponding to coherent_cycles().
double coherent_freq(double target_hz, double fs_hz, std::size_t n);

/// sin(2 pi f t + phase) * amplitude + offset.
SignalFn make_sine(double amplitude, double freq_hz, double phase_rad = 0.0,
                   double offset = 0.0);

/// Sum of two tones (intermodulation testing).
SignalFn make_two_tone(double amp1, double f1_hz, double amp2, double f2_hz,
                       double offset = 0.0);

/// Constant (DC) input.
SignalFn make_dc(double level);

/// Linear ramp from `start` to `stop` over [0, duration].
SignalFn make_ramp(double start, double stop, double duration_s);

/// Samples a signal at fs into n points starting at t = 0.
std::vector<double> sample(const SignalFn& fn, double fs_hz, std::size_t n);

}  // namespace vcoadc::dsp
