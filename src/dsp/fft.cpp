#include "dsp/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace vcoadc::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_in_place(std::vector<Complex>& data) {
  const std::size_t n = data.size();
  assert(is_power_of_two(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson-Lanczos butterflies. Twiddles are recomputed per stage via a
  // complex rotation recurrence; for our sizes (<= 2^22) the accumulated
  // error stays far below the simulation noise floor.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void ifft_in_place(std::vector<Complex>& data) {
  for (Complex& c : data) c = std::conj(c);
  fft_in_place(data);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (Complex& c : data) c = std::conj(c) * inv_n;
}

std::vector<Complex> fft_real(const std::vector<double>& x) {
  assert(is_power_of_two(x.size()));
  std::vector<Complex> data(x.begin(), x.end());
  fft_in_place(data);
  return data;
}

Complex goertzel(const std::vector<double>& x, std::size_t bin) {
  const std::size_t n = x.size();
  const double w = 2.0 * std::numbers::pi * static_cast<double>(bin) /
                   static_cast<double>(n);
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // X[k] with the conventional e^{-jwk} phase reference.
  const Complex res = Complex(s1 - s2 * std::cos(w), s2 * std::sin(w));
  return res * std::exp(Complex(0.0, -w * static_cast<double>(n - 1)));
}

}  // namespace vcoadc::dsp
