#include "dsp/fft.h"

#include <array>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>

namespace vcoadc::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

unsigned log2_exact(std::size_t n) {
  unsigned lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  return lg;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  assert(is_power_of_two(n));
  bitrev_.resize(n_);
  bitrev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
  // Direct per-entry trig (no rotation recurrence): the table is built once
  // per (thread, size), so plan construction pays O(n) trig to keep every
  // execution's twiddles at full double accuracy.
  twiddle_.resize(n_);  // n/2 complex entries, interleaved re/im
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[2 * k] = std::cos(ang);
    twiddle_[2 * k + 1] = std::sin(ang);
  }
}

void FftPlan::forward(Complex* data) const {
  const std::size_t n = n_;
  if (n <= 1) return;

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies on raw doubles: std::complex guarantees array-of-two-double
  // layout, and operating on the components directly sidesteps the library
  // complex-multiply (with its NaN/inf fixup path) in the innermost loop.
  double* d = reinterpret_cast<double*>(data);

  // len == 2: twiddle is +1 — pure add/sub.
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const double ar = d[i], ai = d[i + 1];
    const double br = d[i + 2], bi = d[i + 3];
    d[i] = ar + br;
    d[i + 1] = ai + bi;
    d[i + 2] = ar - br;
    d[i + 3] = ai - bi;
  }

  // len == 4: twiddles are +1 and -j — still multiplication-free.
  if (n >= 4) {
    for (std::size_t i = 0; i < 2 * n; i += 8) {
      double ar = d[i], ai = d[i + 1];
      double br = d[i + 4], bi = d[i + 5];
      d[i] = ar + br;
      d[i + 1] = ai + bi;
      d[i + 4] = ar - br;
      d[i + 5] = ai - bi;
      ar = d[i + 2];
      ai = d[i + 3];
      br = d[i + 6];
      bi = d[i + 7];
      const double tr = bi;   // (br + j bi) * (-j) = bi - j br
      const double ti = -br;
      d[i + 2] = ar + tr;
      d[i + 3] = ai + ti;
      d[i + 6] = ar - tr;
      d[i + 7] = ai - ti;
    }
  }

  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t wstep = 2 * (n / len);  // doubles per twiddle advance
    for (std::size_t i = 0; i < n; i += len) {
      const double* w = twiddle_.data();
      double* a = d + 2 * i;
      double* b = a + 2 * half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = w[0], wi = w[1];
        const double br = b[0] * wr - b[1] * wi;
        const double bi = b[0] * wi + b[1] * wr;
        b[0] = a[0] - br;
        b[1] = a[1] - bi;
        a[0] += br;
        a[1] += bi;
        a += 2;
        b += 2;
        w += wstep;
      }
    }
  }
}

void FftPlan::inverse(Complex* data) const {
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  forward(data);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * inv_n;
}

const FftPlan& FftPlan::of(std::size_t n) {
  assert(is_power_of_two(n));
  static thread_local std::array<std::unique_ptr<FftPlan>, 64> cache;
  auto& slot = cache[log2_exact(n)];
  if (!slot) slot = std::make_unique<FftPlan>(n);
  return *slot;
}

RealFftPlan::RealFftPlan(std::size_t n) : n_(n), half_(n / 2) {
  assert(is_power_of_two(n) && n >= 2);
  const std::size_t quarter = n_ / 4;
  untangle_.resize(2 * (quarter + 1));
  for (std::size_t k = 0; k <= quarter; ++k) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    untangle_[2 * k] = std::cos(ang);
    untangle_[2 * k + 1] = std::sin(ang);
  }
}

void RealFftPlan::forward(const double* x, Complex* out) const {
  const std::size_t m = n_ / 2;

  // Pack x into a half-length complex sequence z[j] = x[2j] + j x[2j+1] and
  // transform it in place inside the caller's output buffer.
  for (std::size_t j = 0; j < m; ++j) {
    out[j] = Complex(x[2 * j], x[2 * j + 1]);
  }
  half_.forward(out);

  // Untangle the even/odd interleave:
  //   E[k] = (Z[k] + conj(Z[m-k])) / 2
  //   O[k] = (Z[k] - conj(Z[m-k])) / (2j)
  //   X[k]   = E[k] + w^k O[k],        w = e^{-j 2 pi / n}
  //   X[m-k] = conj(E[k] - w^k O[k])
  const double z0r = out[0].real();
  const double z0i = out[0].imag();
  out[0] = Complex(z0r + z0i, 0.0);
  out[m] = Complex(z0r - z0i, 0.0);
  for (std::size_t k = 1; 2 * k < m; ++k) {
    const double zkr = out[k].real(), zki = out[k].imag();
    const double zmr = out[m - k].real(), zmi = out[m - k].imag();
    const double h1r = 0.5 * (zkr + zmr);
    const double h1i = 0.5 * (zki - zmi);
    const double h2r = 0.5 * (zki + zmi);
    const double h2i = 0.5 * (zmr - zkr);
    const double wr = untangle_[2 * k];
    const double wi = untangle_[2 * k + 1];
    const double tr = wr * h2r - wi * h2i;
    const double ti = wr * h2i + wi * h2r;
    out[k] = Complex(h1r + tr, h1i + ti);
    out[m - k] = Complex(h1r - tr, ti - h1i);
  }
  if (m >= 2) {
    // k == m/2: X[m/2] = conj(Z[m/2]).
    out[m / 2] = std::conj(out[m / 2]);
  }
}

void RealFftPlan::forward(const std::vector<double>& x,
                          std::vector<Complex>& out) const {
  assert(x.size() == n_);
  out.resize(out_size());
  forward(x.data(), out.data());
}

const RealFftPlan& RealFftPlan::of(std::size_t n) {
  assert(is_power_of_two(n) && n >= 2);
  static thread_local std::array<std::unique_ptr<RealFftPlan>, 64> cache;
  auto& slot = cache[log2_exact(n)];
  if (!slot) slot = std::make_unique<RealFftPlan>(n);
  return *slot;
}

void fft_in_place(std::vector<Complex>& data) {
  if (data.size() <= 1) return;
  FftPlan::of(data.size()).forward(data.data());
}

void ifft_in_place(std::vector<Complex>& data) {
  if (data.size() <= 1) return;
  FftPlan::of(data.size()).inverse(data.data());
}

std::vector<Complex> fft_real(const std::vector<double>& x) {
  assert(is_power_of_two(x.size()));
  const std::size_t n = x.size();
  std::vector<Complex> data(n);
  if (n == 1) {
    data[0] = Complex(x[0], 0.0);
    return data;
  }
  // One-sided transform, upper half restored by conjugate symmetry
  // X[n-k] = conj(X[k]) of a real input.
  RealFftPlan::of(n).forward(x.data(), data.data());
  for (std::size_t k = 1; k < n / 2; ++k) {
    data[n - k] = std::conj(data[k]);
  }
  return data;
}

Complex goertzel(const std::vector<double>& x, std::size_t bin) {
  const std::size_t n = x.size();
  const double w = 2.0 * std::numbers::pi * static_cast<double>(bin) /
                   static_cast<double>(n);
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // X[k] with the conventional e^{-jwk} phase reference.
  const Complex res = Complex(s1 - s2 * std::cos(w), s2 * std::sin(w));
  return res * std::exp(Complex(0.0, -w * static_cast<double>(n - 1)));
}

}  // namespace vcoadc::dsp
