// Window functions for spectral analysis, with the normalization constants
// needed to report calibrated dBFS spectra (coherent gain) and calibrated
// noise power (equivalent noise bandwidth).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vcoadc::dsp {

enum class WindowKind {
  kRect,
  kHann,
  kHamming,
  kBlackmanHarris,  ///< 4-term, -92 dB sidelobes; default for ADC spectra
};

/// Window samples w[0..n-1].
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Coherent gain: mean of the window (scales tone amplitudes).
double coherent_gain(const std::vector<double>& w);

/// Normalized equivalent noise bandwidth in bins:
/// ENBW = N * sum(w^2) / (sum w)^2. Rect = 1, Hann = 1.5, BH4 ~ 2.0.
double enbw_bins(const std::vector<double>& w);

/// Number of bins on each side of a tone that carry significant leakage for
/// this window (used when integrating tone power out of a spectrum).
int leakage_bins(WindowKind kind);

std::string to_string(WindowKind kind);

}  // namespace vcoadc::dsp
