// Decimation filters for the digital back end of the delta-sigma ADC.
//
// Sec. 2.1 of the paper: "with subsequent low pass filtering and decimating
// in digital domain, the effect of quantization to the in-band signal can be
// suppressed." The modulator itself runs at fs; a CIC stage followed by a
// compensating FIR brings the stream down to ~2x the signal bandwidth, which
// is what a downstream user of the ADC would consume.
#pragma once

#include <cstddef>
#include <vector>

namespace vcoadc::dsp {

/// N-th order cascaded integrator-comb decimator with rate change R.
///
/// Streaming interface: push modulator samples, pull decimated samples.
/// Uses double accumulators; for the orders/rates here (N <= 4, R <= 256)
/// dynamic range is ample.
class CicDecimator {
 public:
  CicDecimator(int order, int rate);

  /// Processes one modulator-rate input sample; returns true when an output
  /// sample was produced (written to *out).
  bool push(double in, double* out);

  /// Convenience: filters a whole block.
  std::vector<double> process(const std::vector<double>& in);

  /// DC gain of the filter (R^N); outputs from process() are already
  /// divided by this so passband gain is ~1.
  double dc_gain() const;

  int order() const { return order_; }
  int rate() const { return rate_; }

 private:
  int order_;
  int rate_;
  int phase_ = 0;
  std::vector<double> integrators_;
  std::vector<double> combs_;
};

/// Designs a windowed-sinc (Hann) linear-phase low-pass FIR.
/// cutoff is normalized to the input sample rate (0 < cutoff < 0.5).
std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff);

/// Applies an FIR and decimates by `rate` in one pass (polyphase order of
/// operations; output delayed by the group delay of the filter).
std::vector<double> fir_decimate(const std::vector<double>& in,
                                 const std::vector<double>& taps, int rate);

/// Full decimation chain: CIC (order, rate_cic) followed by a compensating
/// FIR decimate-by-rate_fir. Total rate change = rate_cic * rate_fir.
std::vector<double> decimate_chain(const std::vector<double>& modulator_out,
                                   int cic_order, int cic_rate, int fir_rate,
                                   std::size_t fir_taps = 63);

}  // namespace vcoadc::dsp
