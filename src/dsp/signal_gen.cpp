#include "dsp/signal_gen.h"

#include <cmath>
#include <numbers>

namespace vcoadc::dsp {

std::size_t coherent_cycles(double target_hz, double fs_hz, std::size_t n) {
  if (target_hz <= 0 || fs_hz <= 0 || n == 0) return 1;
  auto k = static_cast<long long>(
      std::llround(target_hz * static_cast<double>(n) / fs_hz));
  if (k < 1) k = 1;
  if (k % 2 == 0) ++k;  // odd cycle counts exercise every quantizer phase
  return static_cast<std::size_t>(k);
}

double coherent_freq(double target_hz, double fs_hz, std::size_t n) {
  return static_cast<double>(coherent_cycles(target_hz, fs_hz, n)) * fs_hz /
         static_cast<double>(n);
}

SignalFn make_sine(double amplitude, double freq_hz, double phase_rad,
                   double offset) {
  return [=](double t) {
    return offset +
           amplitude * std::sin(2.0 * std::numbers::pi * freq_hz * t + phase_rad);
  };
}

SignalFn make_two_tone(double amp1, double f1_hz, double amp2, double f2_hz,
                       double offset) {
  return [=](double t) {
    return offset + amp1 * std::sin(2.0 * std::numbers::pi * f1_hz * t) +
           amp2 * std::sin(2.0 * std::numbers::pi * f2_hz * t);
  };
}

SignalFn make_dc(double level) {
  return [=](double) { return level; };
}

SignalFn make_ramp(double start, double stop, double duration_s) {
  return [=](double t) {
    if (t <= 0) return start;
    if (t >= duration_s) return stop;
    return start + (stop - start) * t / duration_s;
  };
}

std::vector<double> sample(const SignalFn& fn, double fs_hz, std::size_t n) {
  std::vector<double> out(n);
  const double dt = 1.0 / fs_hz;
  for (std::size_t i = 0; i < n; ++i) out[i] = fn(static_cast<double>(i) * dt);
  return out;
}

}  // namespace vcoadc::dsp
