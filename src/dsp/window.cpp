#include "dsp/window.h"

#include <cmath>
#include <numbers>

namespace vcoadc::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double den = static_cast<double>(n);  // periodic windows (DFT-even)
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * std::numbers::pi * static_cast<double>(i) / den;
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(t);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(t);
        break;
      case WindowKind::kBlackmanHarris:
        w[i] = 0.35875 - 0.48829 * std::cos(t) + 0.14128 * std::cos(2 * t) -
               0.01168 * std::cos(3 * t);
        break;
    }
  }
  return w;
}

double coherent_gain(const std::vector<double>& w) {
  if (w.empty()) return 1.0;
  double s = 0;
  for (double v : w) s += v;
  return s / static_cast<double>(w.size());
}

double enbw_bins(const std::vector<double>& w) {
  if (w.empty()) return 1.0;
  double s = 0, s2 = 0;
  for (double v : w) {
    s += v;
    s2 += v * v;
  }
  return static_cast<double>(w.size()) * s2 / (s * s);
}

int leakage_bins(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRect:
      return 0;
    case WindowKind::kHann:
    case WindowKind::kHamming:
      return 3;
    case WindowKind::kBlackmanHarris:
      return 5;
  }
  return 3;
}

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRect:
      return "rect";
    case WindowKind::kHann:
      return "hann";
    case WindowKind::kHamming:
      return "hamming";
    case WindowKind::kBlackmanHarris:
      return "blackman-harris";
  }
  return "?";
}

}  // namespace vcoadc::dsp
