// Engineering-unit helpers: SI-prefix formatting and decibel conversions.
//
// Everything in the library is stored in base SI units (seconds, hertz,
// volts, watts, square metres); these helpers only affect presentation and
// the dB math used by the spectrum analyzers.
#pragma once

#include <string>

namespace vcoadc::util {

/// Formats `value` with an SI prefix and the given unit, e.g.
/// si_format(7.5e8, "Hz") == "750 MHz". Uses 4 significant digits.
std::string si_format(double value, const std::string& unit);

/// Formats `value` with fixed decimal places (no SI prefix).
std::string fixed_format(double value, int decimals);

/// Power ratio in decibels: 10*log10(ratio). Returns -inf for ratio <= 0.
double db_power(double ratio);

/// Amplitude ratio in decibels: 20*log10(ratio). Returns -inf for ratio <= 0.
double db_amplitude(double ratio);

/// Inverse of db_power.
double from_db_power(double db);

/// Inverse of db_amplitude.
double from_db_amplitude(double db);

/// Effective number of bits from an SNDR in dB (the paper's Table 3 formula):
/// ENOB = (SNDR - 1.76) / 6.02.
double enob_from_sndr_db(double sndr_db);

/// Walden figure of merit in femtojoules per conversion step (Table 3):
/// FOM = P / (2^ENOB * 2 * BW), reported in fJ/conv-step.
double walden_fom_fj(double power_w, double sndr_db, double bandwidth_hz);

inline constexpr double kBoltzmann = 1.380649e-23;  // J/K
inline constexpr double kRoomTempK = 300.0;

}  // namespace vcoadc::util
