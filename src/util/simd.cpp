#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace vcoadc::util::simd {

namespace {

// VCOADC_SIMD_CAP is injected by CMake (0 scalar, 1 sse2, 2 avx2,
// 3 avx512); the default build carries the full ladder and relies on
// runtime dispatch.
#if !defined(VCOADC_SIMD_CAP)
#define VCOADC_SIMD_CAP 3
#endif

Tier clamp_tier(int t) {
  if (t <= 0) return Tier::kScalar;
  if (t == 1) return Tier::kSse2;
  if (t == 2) return Tier::kAvx2;
  return Tier::kAvx512;
}

Tier min_tier(Tier a, Tier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// Parses a tier spelling; anything unrecognized (including "auto" and an
/// unset variable) means "no ceiling".
Tier parse_tier(const char* s) {
  if (s == nullptr) return Tier::kAvx512;
  if (std::strcmp(s, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(s, "sse2") == 0) return Tier::kSse2;
  if (std::strcmp(s, "avx2") == 0) return Tier::kAvx2;
  if (std::strcmp(s, "avx512") == 0) return Tier::kAvx512;
  return Tier::kAvx512;
}

// -1 = no override; otherwise the forced tier (testing hook).
std::atomic<int> g_override{-1};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "scalar";
}

Tier compiled_cap() { return clamp_tier(VCOADC_SIMD_CAP); }

Tier cpu_tier() {
#if defined(__x86_64__) || defined(__i386__)
  // SSE2 is architectural on x86-64; probe the AVX2 step, then the AVX-512
  // subset the avx512 tier TU is compiled for (foundation + DQ/VL for the
  // 64-bit integer compares and 128/256-bit mixing, BW for byte masks).
  static const Tier t = [] {
    if (!__builtin_cpu_supports("avx2")) return Tier::kSse2;
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512bw")) {
      return Tier::kAvx512;
    }
    return Tier::kAvx2;
  }();
  return t;
#else
  // Unknown ISA: the "sse2"/"avx2" TUs are portable C++ compiled without
  // x86 flags, so any tier is safe to run; keep the scalar tier to make
  // the dispatch decision honest about vector width.
  return Tier::kScalar;
#endif
}

Tier env_cap() {
  static const Tier t = parse_tier(std::getenv("VCOADC_SIMD"));
  return t;
}

Tier active_tier() {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return min_tier(clamp_tier(ov), compiled_cap());
  static const Tier t = min_tier(min_tier(compiled_cap(), cpu_tier()),
                                 env_cap());
  return t;
}

int active_width() {
  // One vector register of lanes per tier: 8 at avx512 (32 zmm registers
  // absorb the live values that spilled at W=8 on avx2), 4 at avx2 (one ymm
  // per live value; W=8 spills the kernel's ~20 live values
  // catastrophically), two lanes elsewhere (the narrower tiers hit xmm
  // pressure already at W=4). All choices measured, not derived — see
  // DESIGN.md 3i.
  const Tier t = active_tier();
  if (t == Tier::kAvx512) return 8;
  return t == Tier::kAvx2 ? 4 : 2;
}

void set_tier_override_for_testing(int t) {
  g_override.store(t < 0 ? -1 : t, std::memory_order_relaxed);
}

std::string runtime_summary() {
  const Tier t = active_tier();
  const char* env = std::getenv("VCOADC_SIMD");
  std::string s = "tier ";
  s += tier_name(t);
  s += " (width ";
  s += std::to_string(tier_width(t));
  s += ") | compiled cap ";
  s += tier_name(compiled_cap());
  s += " | cpu ";
  s += tier_name(cpu_tier());
  s += " | env ";
  s += (env != nullptr && env[0] != '\0') ? env : "-";
  return s;
}

}  // namespace vcoadc::util::simd
