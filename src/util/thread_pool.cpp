#include "util/thread_pool.h"

#include <algorithm>

namespace vcoadc::util {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::hardware_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadPoolStats s;
  s.tasks_executed = tasks_executed_;
  s.busy_seconds = busy_seconds_;
  s.max_queue_depth = max_queue_depth_;
  return s;
}

void ThreadPool::record_task(std::chrono::steady_clock::time_point start) {
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::lock_guard<std::mutex> lock(mutex_);
  ++tasks_executed_;
  busy_seconds_ += dt;
}

void ThreadPool::enqueue(std::function<void()> job) {
  if (workers_.empty()) {
    // Serial fallback: run inline. packaged_task still captures exceptions,
    // so the future contract is identical to the threaded path.
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: a queued task owns a promise
      // someone may still be waiting on.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace vcoadc::util
