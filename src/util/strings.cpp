#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace vcoadc::util {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) out.emplace_back(s.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const unsigned char first = s.front();
  if (!std::isalpha(first) && first != '_') return false;
  for (unsigned char c : s.substr(1)) {
    if (!std::isalnum(c) && c != '_' && c != '$') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace vcoadc::util
