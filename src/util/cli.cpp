#include "util/cli.h"

#include <cstdlib>

#include "util/strings.h"

namespace vcoadc::util {

ArgParser::ArgParser(int argc, const char* const argv[]) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& flag) const {
  return flags_.count(flag) != 0;
}

std::string ArgParser::get(const std::string& flag,
                           const std::string& fallback) const {
  auto it = flags_.find(flag);
  return (it != flags_.end()) ? it->second : fallback;
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  auto it = flags_.find(flag);
  return (it != flags_.end()) ? std::atof(it->second.c_str()) : fallback;
}

int ArgParser::get_int(const std::string& flag, int fallback) const {
  auto it = flags_.find(flag);
  return (it != flags_.end()) ? std::atoi(it->second.c_str()) : fallback;
}

std::vector<std::string> ArgParser::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    bool ok = false;
    for (const auto& k : known) {
      if (k == name) ok = true;
    }
    if (!ok) out.push_back("--" + name);
  }
  return out;
}

}  // namespace vcoadc::util
