#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vcoadc::util {
namespace {

double transform_x(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-300)) : x;
}

}  // namespace

std::string ascii_plot(const std::vector<double>& x,
                       const std::vector<double>& y, const PlotOptions& opts) {
  const int width = std::max(opts.width, 10);
  const int height = std::max(opts.height, 4);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(y[i])) continue;
    const double tx = transform_x(x[i], opts.log_x);
    if (!std::isfinite(tx)) continue;
    xmin = std::min(xmin, tx);
    xmax = std::max(xmax, tx);
    ymin = std::min(ymin, y[i]);
    ymax = std::max(ymax, y[i]);
  }
  if (!(xmin < xmax)) xmax = xmin + 1.0;
  if (opts.clamp_y) {
    ymin = opts.y_min;
    ymax = opts.y_max;
  }
  if (!(ymin < ymax)) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(y[i])) continue;
    const double tx = transform_x(x[i], opts.log_x);
    if (!std::isfinite(tx)) continue;
    const double yv = std::clamp(y[i], ymin, ymax);
    int col = static_cast<int>((tx - xmin) / (xmax - xmin) * (width - 1) + 0.5);
    int row = static_cast<int>((ymax - yv) / (ymax - ymin) * (height - 1) + 0.5);
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    char& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
    cell = (cell == ' ') ? '*' : '#';
  }

  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  char label[64];
  for (int r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height - 1);
    if (r == 0 || r == height - 1 || r == height / 2) {
      std::snprintf(label, sizeof(label), "%10.3g |", yv);
    } else {
      std::snprintf(label, sizeof(label), "%10s |", "");
    }
    out += label;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(static_cast<std::size_t>(width), '-') + '\n';
  char footer[256];
  if (opts.log_x) {
    std::snprintf(footer, sizeof(footer), "%12s%-.4g%*s%.4g (log scale) %s\n",
                  "", std::pow(10.0, xmin), width - 16, "", std::pow(10.0, xmax),
                  opts.x_label.c_str());
  } else {
    std::snprintf(footer, sizeof(footer), "%12s%-.4g%*s%.4g  %s\n", "", xmin,
                  width - 16, "", xmax, opts.x_label.c_str());
  }
  out += footer;
  if (!opts.y_label.empty()) out += "  y: " + opts.y_label + "\n";
  return out;
}

std::string ascii_plot(const std::vector<double>& y, const PlotOptions& opts) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  return ascii_plot(x, y, opts);
}

}  // namespace vcoadc::util
