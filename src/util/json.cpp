#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace vcoadc::util::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::set(std::string key, Value v) {
  kind = Kind::kObject;
  object.emplace_back(std::move(key), std::move(v));
  return *this;
}

void Value::push(Value v) {
  kind = Kind::kArray;
  array.push_back(std::move(v));
}

namespace {

/// Recursive-descent parser over a bounded view. Depth-limited so a
/// hostile request ("[[[[...") cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult res;
    Value v;
    if (!parse_value(v, 0)) {
      res.error = error_;
      return res;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      res.error = at("trailing characters after the document");
      return res;
    }
    res.ok = true;
    res.value = std::move(v);
    return res;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string at(const std::string& reason) {
    return format("byte %zu: %s", pos_, reason.c_str());
  }

  bool fail(const std::string& reason) {
    if (error_.empty()) error_ = at(reason);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!literal("true")) return fail("invalid literal");
        out = Value::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("invalid literal");
        out = Value::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        out = Value::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out = Value::make_object();
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out = Value::make_array();
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      Value element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  /// Appends one UTF-8 encoded code point.
  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half right behind it.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return fail("invalid value");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (eat('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = Value::make_number(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_to(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull:
      out += "null";
      return;
    case Value::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case Value::Kind::kNumber: {
      if (!std::isfinite(v.number)) {
        out += "null";  // JSON has no NaN/Inf; absence beats invalid bytes
        return;
      }
      const double r = std::nearbyint(v.number);
      char buf[40];
      if (r == v.number && std::fabs(v.number) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v.number);
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", v.number);
      }
      out += buf;
      return;
    }
    case Value::Kind::kString:
      out += '"';
      out += escape(v.string);
      out += '"';
      return;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.array) {
        if (!first) out += ',';
        first = false;
        dump_to(e, out);
      }
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, member] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        dump_to(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vcoadc::util::json
