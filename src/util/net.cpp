#include "util/net.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace vcoadc::util::net {

std::string Endpoint::describe() const {
  if (!ok) return "<invalid endpoint: " + error + ">";
  if (is_tcp) return util::format("tcp:127.0.0.1:%d", tcp_port);
  return unix_path;
}

Endpoint parse_endpoint(std::string_view spec) {
  Endpoint ep;
  if (spec.empty()) {
    ep.error = "empty endpoint (want tcp:<port> or a unix socket path)";
    return ep;
  }
  if (starts_with(spec, "tcp:")) {
    const std::string port_str(spec.substr(4));
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || port < 0 ||
        port > 65535) {
      ep.error = "bad tcp port '" + port_str + "' (want 0..65535)";
      return ep;
    }
    ep.is_tcp = true;
    ep.tcp_port = static_cast<int>(port);
    ep.ok = true;
    return ep;
  }
  if (starts_with(spec, "unix:")) spec.remove_prefix(5);
  if (spec.empty()) {
    ep.error = "empty unix socket path";
    return ep;
  }
  ep.unix_path = std::string(spec);
  ep.ok = true;
  return ep;
}

#if !defined(_WIN32)

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

Connection::~Connection() { close(); }

Connection::Connection(Connection&& o) noexcept
    : fd_(o.fd_), buf_(std::move(o.buf_)) {
  o.fd_ = -1;
}

Connection& Connection::operator=(Connection&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Connection::ReadStatus Connection::read_line(std::string* line,
                                             const std::atomic<bool>* stop,
                                             int poll_ms) {
  if (fd_ < 0) return ReadStatus::kError;
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return ReadStatus::kLine;
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return ReadStatus::kStop;
    }
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, stop != nullptr ? poll_ms : -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (pr == 0) continue;  // slice elapsed; re-check the stop flag
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n == 0) return ReadStatus::kEof;  // partial buf_ is mid-line junk
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kError;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Connection::write_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE here,
    // never a process-wide SIGPIPE.
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Connection::write_line(std::string_view line) {
  return write_all(line) && write_all("\n");
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), port_(o.port_), unix_path_(std::move(o.unix_path_)) {
  o.fd_ = -1;
  o.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    port_ = o.port_;
    unix_path_ = std::move(o.unix_path_);
    o.fd_ = -1;
    o.unix_path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

namespace {

/// Fills `sa` for a unix endpoint; false when the path exceeds sun_path.
bool fill_unix_addr(const std::string& path, sockaddr_un* sa,
                    std::string* error) {
  if (path.size() >= sizeof(sa->sun_path)) {
    *error = util::format("unix socket path too long (%zu bytes, max %zu)",
                          path.size(), sizeof(sa->sun_path) - 1);
    return false;
  }
  std::memset(sa, 0, sizeof *sa);
  sa->sun_family = AF_UNIX;
  std::memcpy(sa->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

Listener Listener::listen(const Endpoint& ep, std::string* error) {
  Listener l;
  if (!ep.ok) {
    *error = ep.error;
    return l;
  }
  if (ep.is_tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = util::format("socket: %s", std::strerror(errno));
      return l;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(fd, 64) != 0) {
      *error = util::format("bind/listen tcp:%d: %s", ep.tcp_port,
                            std::strerror(errno));
      ::close(fd);
      return l;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      l.port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    l.fd_ = fd;
    return l;
  }

  sockaddr_un sa{};
  if (!fill_unix_addr(ep.unix_path, &sa, error)) return l;
  // A stale socket file from a killed server blocks bind; unlink it only
  // when it really is a socket, so a path typo never deletes user data.
  struct stat st{};
  if (::lstat(ep.unix_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      *error = ep.unix_path + " exists and is not a socket";
      return l;
    }
    ::unlink(ep.unix_path.c_str());
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = util::format("socket: %s", std::strerror(errno));
    return l;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = util::format("bind/listen %s: %s", ep.unix_path.c_str(),
                          std::strerror(errno));
    ::close(fd);
    return l;
  }
  l.fd_ = fd;
  l.unix_path_ = ep.unix_path;
  return l;
}

Listener::AcceptStatus Listener::accept(Connection* out,
                                        const std::atomic<bool>* stop,
                                        int poll_ms) {
  if (fd_ < 0) return AcceptStatus::kError;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return AcceptStatus::kStop;
    }
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, stop != nullptr ? poll_ms : -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return AcceptStatus::kError;
    }
    if (pr == 0) continue;
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      return AcceptStatus::kError;
    }
    *out = Connection(cfd);
    return AcceptStatus::kAccepted;
  }
}

Connection dial(const Endpoint& ep, std::string* error) {
  if (!ep.ok) {
    *error = ep.error;
    return Connection();
  }
  if (ep.is_tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = util::format("socket: %s", std::strerror(errno));
      return Connection();
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      *error = util::format("connect tcp:%d: %s", ep.tcp_port,
                            std::strerror(errno));
      ::close(fd);
      return Connection();
    }
    return Connection(fd);
  }
  sockaddr_un sa{};
  if (!fill_unix_addr(ep.unix_path, &sa, error)) return Connection();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = util::format("socket: %s", std::strerror(errno));
    return Connection();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    *error = util::format("connect %s: %s", ep.unix_path.c_str(),
                          std::strerror(errno));
    ::close(fd);
    return Connection();
  }
  return Connection(fd);
}

#else  // _WIN32: the socket transport is POSIX-only; everything degrades
       // to a clean error so the stdio transport still works.

void ignore_sigpipe() {}
Connection::~Connection() = default;
Connection::Connection(Connection&&) noexcept {}
Connection& Connection::operator=(Connection&&) noexcept { return *this; }
void Connection::close() {}
Connection::ReadStatus Connection::read_line(std::string*,
                                             const std::atomic<bool>*, int) {
  return ReadStatus::kError;
}
bool Connection::write_all(std::string_view) { return false; }
bool Connection::write_line(std::string_view) { return false; }
Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept {}
Listener& Listener::operator=(Listener&&) noexcept { return *this; }
void Listener::close() {}
Listener Listener::listen(const Endpoint&, std::string* error) {
  *error = "socket transport is not supported on this platform";
  return Listener();
}
Listener::AcceptStatus Listener::accept(Connection*,
                                        const std::atomic<bool>*, int) {
  return AcceptStatus::kError;
}
Connection dial(const Endpoint&, std::string* error) {
  *error = "socket transport is not supported on this platform";
  return Connection();
}

#endif

}  // namespace vcoadc::util::net
