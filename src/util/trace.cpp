#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vcoadc::util {

namespace {

// Innermost open span per (thread, Trace). A plain vector of pairs: a
// thread holds at most a handful of nested spans across very few Trace
// instances, so linear scans beat a map.
thread_local std::vector<std::pair<const Trace*, int>> t_open_spans;

int current_parent(const Trace* trace) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->first == trace) return it->second;
  }
  return -1;
}

void push_open(const Trace* trace, int token) {
  t_open_spans.emplace_back(trace, token);
}

void pop_open(const Trace* trace, int token) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->first == trace && it->second == token) {
      t_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

std::string fmt_ms(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

double Trace::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

int Trace::begin(const std::string& name) {
  const double t = now_s();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.name = name;
  ev.start_s = t;
  ev.parent = current_parent(this);
  const int token = static_cast<int>(events_.size());
  events_.push_back(std::move(ev));
  push_open(this, token);
  return token;
}

void Trace::end(int token, const std::string& detail, int cache_hit,
                std::size_t bytes) {
  const double t = now_s();
  std::lock_guard<std::mutex> lock(mutex_);
  if (token < 0 || token >= static_cast<int>(events_.size())) return;
  TraceEvent& ev = events_[static_cast<std::size_t>(token)];
  ev.dur_s = t - ev.start_s;
  if (!detail.empty()) ev.detail = detail;
  ev.cache_hit = cache_hit;
  ev.bytes = bytes;
  pop_open(this, token);
}

void Trace::instant(const std::string& name, const std::string& detail) {
  const double t = now_s();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.name = name;
  ev.detail = detail;
  ev.start_s = t;
  ev.parent = current_parent(this);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Trace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

bool Trace::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

std::string Trace::render_tree() const {
  const std::vector<TraceEvent> evs = events();
  // Children of each node, in begin order.
  std::vector<std::vector<int>> children(evs.size() + 1);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const int p = evs[i].parent;
    children[p < 0 ? evs.size() : static_cast<std::size_t>(p)].push_back(
        static_cast<int>(i));
  }

  std::ostringstream os;
  // Render one level: siblings with the same name collapse to one line.
  auto render_level = [&](auto&& self, const std::vector<int>& ids,
                          int depth) -> void {
    std::vector<int> done(ids.size(), 0);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (done[i]) continue;
      std::vector<int> group;
      for (std::size_t j = i; j < ids.size(); ++j) {
        if (!done[j] && evs[static_cast<std::size_t>(ids[j])].name ==
                            evs[static_cast<std::size_t>(ids[i])].name) {
          done[j] = 1;
          group.push_back(ids[j]);
        }
      }
      double total = 0, mn = 1e300, mx = 0;
      std::size_t bytes = 0;
      int hits = 0, misses = 0;
      for (int id : group) {
        const TraceEvent& e = evs[static_cast<std::size_t>(id)];
        total += e.dur_s;
        mn = std::min(mn, e.dur_s);
        mx = std::max(mx, e.dur_s);
        bytes += e.bytes;
        if (e.cache_hit == 1) ++hits;
        if (e.cache_hit == 0) ++misses;
      }
      const TraceEvent& first = evs[static_cast<std::size_t>(group[0])];
      std::string line(static_cast<std::size_t>(depth) * 2, ' ');
      line += first.name;
      if (group.size() > 1) line += " x" + std::to_string(group.size());
      while (line.size() < 34) line += ' ';
      os << line << "  " << fmt_ms(total);
      if (group.size() > 1) {
        os << " (min " << fmt_ms(mn) << ", max " << fmt_ms(mx) << ")";
      }
      if (hits + misses > 0) {
        os << "  [cache " << hits << " hit / " << misses << " miss]";
      }
      if (bytes > 0) os << "  " << bytes << " B";
      if (group.size() == 1 && !first.detail.empty()) {
        os << "  " << first.detail;
      }
      os << "\n";
      // Children of the whole group render under the collapsed line.
      std::vector<int> kids;
      for (int id : group) {
        const auto& c = children[static_cast<std::size_t>(id)];
        kids.insert(kids.end(), c.begin(), c.end());
      }
      if (!kids.empty()) self(self, kids, depth + 1);
    }
  };
  render_level(render_level, children[evs.size()], 0);
  return os.str();
}

std::string Trace::render_jsonl() const {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    os << "{\"span\":" << i << ",\"name\":\"" << json_escape(e.name)
       << "\",\"start_ms\":" << e.start_s * 1e3
       << ",\"dur_ms\":" << e.dur_s * 1e3 << ",\"parent\":" << e.parent;
    if (e.cache_hit >= 0) {
      os << ",\"cache_hit\":" << (e.cache_hit == 1 ? "true" : "false");
    }
    if (e.bytes > 0) os << ",\"bytes\":" << e.bytes;
    if (!e.detail.empty()) {
      os << ",\"detail\":\"" << json_escape(e.detail) << "\"";
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace vcoadc::util
