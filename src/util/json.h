// Minimal JSON value model, parser and writer for the evaluation service
// (`vcoadc_cli serve`): newline-delimited request/response objects, nothing
// exotic. Self-contained (no external dependencies), strict enough to
// reject malformed wire input with a positioned error instead of guessing.
//
// The value model is deliberately small: null / bool / number (double) /
// string / array / object. Object members keep insertion order so a dumped
// response is byte-stable across runs — the serve round-trip test and the
// response fingerprint (`result_fp`) both rely on that.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vcoadc::util::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Members in insertion order (no hashing: responses must dump the same
  /// bytes for the same content, and requests are small).
  std::vector<std::pair<std::string, Value>> object;

  static Value make_null() { return Value{}; }
  static Value make_bool(bool b) {
    Value v;
    v.kind = Kind::kBool;
    v.boolean = b;
    return v;
  }
  static Value make_number(double d) {
    Value v;
    v.kind = Kind::kNumber;
    v.number = d;
    return v;
  }
  static Value make_string(std::string s) {
    Value v;
    v.kind = Kind::kString;
    v.string = std::move(s);
    return v;
  }
  static Value make_array() {
    Value v;
    v.kind = Kind::kArray;
    return v;
  }
  static Value make_object() {
    Value v;
    v.kind = Kind::kObject;
    return v;
  }

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; null when absent or not an object.
  const Value* find(std::string_view key) const;

  // Typed reads with a fallback for absent/mistyped values — wire options
  // are all optional, so "missing means default" is the normal path.
  bool bool_or(bool fallback) const {
    return is_bool() ? boolean : fallback;
  }
  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  std::string string_or(std::string fallback) const {
    return is_string() ? string : fallback;
  }

  /// Object builder: appends (serve responses never repeat a key).
  Value& set(std::string key, Value v);
  /// Array builder.
  void push(Value v);
};

struct ParseResult {
  bool ok = false;
  std::string error;  ///< "byte N: reason" when !ok
  Value value;
};

/// Parses one JSON document. Trailing garbage after the document is an
/// error (NDJSON framing already split the stream into lines).
ParseResult parse(std::string_view text);

/// Compact (no whitespace) dump. Numbers print as a round-trippable
/// shortest-ish form: integers without a fraction, everything else %.17g,
/// and non-finite values (which JSON cannot carry) as null.
std::string dump(const Value& v);

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string escape(std::string_view s);

}  // namespace vcoadc::util::json
