// Deterministic pseudo-random number generation for reproducible
// mixed-signal simulation.
//
// All stochastic elements in the simulator (thermal noise, mismatch draws,
// jitter, metastability resolution) pull from an Rng instance that is seeded
// explicitly, so every experiment in the benchmark harness is bit-for-bit
// repeatable. The generator is xoshiro256++, which is small, fast, and has
// no measurable bias for the statistical depths we use (<= 2^40 draws).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace vcoadc::util {

/// xoshiro256++ engine with convenience distributions.
///
/// Not a cryptographic generator; intended for Monte-Carlo style circuit
/// simulation only. Copyable: copies continue the sequence independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives a child generator whose stream is independent of the parent's
  /// subsequent draws. Used to give each slice / noise source its own stream
  /// so adding a component never perturbs the draws of another.
  Rng fork(std::string_view tag);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // UniformRandomBitGenerator interface for <random> interop.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// 64-bit FNV-1a hash, used to derive fork seeds from tags.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace vcoadc::util
