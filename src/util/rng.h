// Deterministic pseudo-random number generation for reproducible
// mixed-signal simulation.
//
// All stochastic elements in the simulator (thermal noise, mismatch draws,
// jitter, metastability resolution) pull from an Rng instance that is seeded
// explicitly, so every experiment in the benchmark harness is bit-for-bit
// repeatable. The generator is xoshiro256++, which is small, fast, and has
// no measurable bias for the statistical depths we use (<= 2^40 draws).
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "util/simd.h"

namespace vcoadc::util {

namespace detail {

/// Ziggurat tables for the standard normal (Marsaglia & Tsang construction,
/// 256 layers, 52-bit mantissa draws). Built at compile time so the fast
/// path is a table lookup, a multiply, and a compare with no static-init
/// guard. kZigR is the base of the tail layer; kZigM scales a 52-bit
/// integer draw to the layer coordinate.
inline constexpr double kZigR = 3.6541528853610088;
inline constexpr double kZigM = 4503599627370496.0;  // 2^52

// Structure-of-arrays layout, one cache-line-aligned array per column: the
// lane-batched fast path (LaneRng::gaussian_lanes) gathers k[idx] and
// w[idx] per lane with the layer indices coming from random bytes, so each
// column is kept dense and 64-byte aligned — every gather touches at most
// one line per column and the two columns never false-share.
struct ZigTables {
  alignas(64) std::array<std::uint64_t, 256> k{};  // layer accept thresholds
  alignas(64) std::array<double, 256> w{};  // draw -> x scale per layer
  alignas(64) std::array<double, 256> f{};  // pdf at each layer base
};

consteval ZigTables make_zig_tables() {
  // Total area of each layer (rectangle, or base strip + tail for layer 0).
  constexpr double v = 4.92867323399e-3;
  ZigTables t;
  double d = kZigR;
  double prev = d;
  const double q = v / std::exp(-0.5 * d * d);
  t.k[0] = static_cast<std::uint64_t>((d / q) * kZigM);
  t.k[1] = 0;
  t.w[0] = q / kZigM;
  t.w[255] = d / kZigM;
  t.f[0] = 1.0;
  t.f[255] = std::exp(-0.5 * d * d);
  for (int i = 254; i >= 1; --i) {
    d = std::sqrt(-2.0 * std::log(v / d + std::exp(-0.5 * d * d)));
    t.k[i + 1] = static_cast<std::uint64_t>((d / prev) * kZigM);
    prev = d;
    t.f[i] = std::exp(-0.5 * d * d);
    t.w[i] = d / kZigM;
  }
  return t;
}

inline constexpr ZigTables kZig = make_zig_tables();

}  // namespace detail

/// xoshiro256++ engine with convenience distributions.
///
/// Not a cryptographic generator; intended for Monte-Carlo style circuit
/// simulation only. Copyable: copies continue the sequence independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives a child generator whose stream is independent of the parent's
  /// subsequent draws. Used to give each slice / noise source its own stream
  /// so adding a component never perturbs the draws of another.
  Rng fork(std::string_view tag);

  // The draw functions are defined inline: they sit on the modulator's
  // per-substep hot path (thermal noise, white-FM phase noise, comparator
  // noise), where an out-of-line call per draw is measurable.

  /// Raw 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl_(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via the ziggurat method. One u64 draw, a table
  /// lookup, a multiply and a compare cover ~99% of calls; rejections and
  /// the tail fall through to the out-of-line slow path (the only place
  /// that touches exp/log). Replaces Box-Muller, whose per-draw log +
  /// sincos dominated the modulator's noise-injection cost.
  double gaussian() {
    const std::uint64_t u = next_u64();
    const std::size_t idx = static_cast<std::size_t>(u & 255u);
    const std::uint64_t rabs = u >> 12;  // 52 uniform bits
    if (rabs < detail::kZig.k[idx]) [[likely]] {
      const double x = static_cast<double>(rabs) * detail::kZig.w[idx];
      return (u & 256u) ? -x : x;
    }
    return gaussian_slow_(u);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // UniformRandomBitGenerator interface for <random> interop.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  template <int W>
  friend class LaneRng;

  static std::uint64_t rotl_(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Ziggurat rejection path: tail sampling for layer 0, wedge
  /// accept/reject elsewhere, retrying with fresh draws as needed.
  double gaussian_slow_(std::uint64_t u);

  std::array<std::uint64_t, 4> state_{};
};

/// W independent xoshiro256++ streams stored structure-of-arrays, for the
/// batched (lane-lockstep) transient engine. Lane w is seeded from a scalar
/// Rng and from then on produces the exact draw sequence that Rng would
/// have produced on its own: next_lanes() runs the identical state update
/// per lane (one packed instruction per line once vectorized), and the
/// ziggurat rejection path falls back to the scalar Rng::gaussian_slow_ on
/// the extracted lane state. Lanes are independent streams — a slow-path
/// retry in one lane never advances another — so "lockstep" refers only to
/// the call structure, not to shared state.
// The lane-batch hot path must inline into each kernel tier's translation
// unit so it is compiled under that TU's codegen flags (the out-of-line
// template instantiation would be a comdat symbol: one TU's codegen would
// silently serve every tier, and the state-update loops would never pack).
#if defined(__GNUC__) || defined(__clang__)
#define VCOADC_LANE_INLINE inline __attribute__((always_inline))
#define VCOADC_LANE_INLINE_LAMBDA __attribute__((always_inline))
#else
#define VCOADC_LANE_INLINE inline
#define VCOADC_LANE_INLINE_LAMBDA
#endif

template <int W>
class LaneRng {
 public:
  LaneRng() = default;

  /// Installs `r`'s current state as lane `w`'s stream position.
  void set_lane(int w, const Rng& r) {
    for (int j = 0; j < 4; ++j) s_[j][w] = r.state_[j];
  }

  /// Advances every lane one step and returns the raw 64-bit draws.
  /// With native vectors the whole xoshiro update is a handful of packed
  /// integer instructions; the per-lane bit pattern is identical either way
  /// (shifts, xors and adds have no rounding or ordering freedom).
  VCOADC_LANE_INLINE void next_lanes(std::uint64_t out[W]) {
#if VCOADC_SIMD_NATIVE
    UV r;
    next_v_(&r);
    for (int w = 0; w < W; ++w) out[w] = r[w];
#else
    for (int w = 0; w < W; ++w) {
      out[w] = Rng::rotl_(s_[0][w] + s_[3][w], 23) + s_[0][w];
    }
    for (int w = 0; w < W; ++w) {
      const std::uint64_t t = s_[1][w] << 17;
      s_[2][w] ^= s_[0][w];
      s_[3][w] ^= s_[1][w];
      s_[1][w] ^= s_[2][w];
      s_[0][w] ^= s_[3][w];
      s_[2][w] ^= t;
      s_[3][w] = Rng::rotl_(s_[3][w], 45);
    }
#endif
  }

  /// One standard-normal draw per lane; identical per-lane sequence to
  /// Rng::gaussian(). The ~99% ziggurat accept path runs packed across all
  /// W lanes on the SoA tables; only rejected lanes round-trip the scalar
  /// slow path.
  VCOADC_LANE_INLINE void gaussian_lanes(double out[W]) {
#if VCOADC_SIMD_NATIVE
    // Lane-transposed fast path over the SoA ziggurat layout: one packed
    // xoshiro step, per-lane gathers of the layer threshold/scale columns
    // (the layer index is a random byte, so those two loads are the only
    // scalar work left), then a packed convert, scale and branchless sign
    // flip. The accept test is evaluated packed for every lane at once and
    // the packed result is kept for every accepted lane; only rejected
    // lanes (~1.5% each, independent) pay a scalar fixup. An earlier packed
    // attempt measured ~10% slower at W=4 because its combined
    // all-lanes-accept branch re-ran the entire lane loop on any reject —
    // here a reject costs one slow_lane_ call and nothing else.
    //
    // Bit-identity: __builtin_convertvector performs the same u64->double
    // conversion as static_cast, the multiply and the sign-bit XOR are the
    // scalar path's exact per-lane IEEE/bit operations, and the reject
    // predicate (rabs >= k[idx]) is the complement of the scalar accept —
    // the per-lane draw sequence and accept/reject decisions are unchanged.
    UV u;
    next_v_(&u);
    UV kv;
    DV wv;
    for (int w = 0; w < W; ++w) {
      const std::size_t idx = static_cast<std::size_t>(u[w] & 255u);
      kv[w] = detail::kZig.k[idx];
      wv[w] = detail::kZig.w[idx];
    }
    const UV rabs = u >> 12;
    const DV x = __builtin_convertvector(rabs, DV) * wv;
    // GCC vector casts reinterpret bits (they are not value conversions),
    // so this is the scalar path's bit_cast/XOR/bit_cast sign flip — and
    // unlike std::bit_cast it is not a by-value vector call, so it draws
    // no -Wpsabi at instantiation points outside the widest-ISA TUs.
    const DV xs = (DV)((UV)x ^ ((u & 256u) << 55));
    const auto rej = rabs >= kv;  // 0 / ~0 per lane
    std::uint64_t any_rej = 0;
    for (int w = 0; w < W; ++w) {
      out[w] = xs[w];
      any_rej |= static_cast<std::uint64_t>(rej[w]);
    }
    if (any_rej != 0) [[unlikely]] {
      for (int w = 0; w < W; ++w) {
        if (rej[w] != 0) out[w] = slow_lane_(w, u[w]);
      }
    }
#else
    std::uint64_t u[W];
    next_lanes(u);
    for (int w = 0; w < W; ++w) {
      const std::size_t idx = static_cast<std::size_t>(u[w] & 255u);
      const std::uint64_t rabs = u[w] >> 12;
      if (rabs < detail::kZig.k[idx]) [[likely]] {
        const double x = static_cast<double>(rabs) * detail::kZig.w[idx];
        // Branchless sign: x >= 0 here, so flipping the sign bit is exactly
        // Rng::gaussian's `(u & 256u) ? -x : x` — but without a 50/50
        // data-dependent branch per lane per draw.
        out[w] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                                       ((u[w] & 256u) << 55));
      } else {
        out[w] = slow_lane_(w, u[w]);
      }
    }
#endif
  }

  /// One uniform [0,1) draw per lane (Rng::uniform's mantissa mapping).
  VCOADC_LANE_INLINE void uniform_lanes(double out[W]) {
#if VCOADC_SIMD_NATIVE
    // Packed throughout: the mantissa shift, the u64->double conversion
    // (identical to static_cast per lane) and the 2^-53 scale have no
    // rejection path, so no scalar tail exists at all.
    UV u;
    next_v_(&u);
    const DV r = __builtin_convertvector(u >> 11, DV) * 0x1.0p-53;
    for (int w = 0; w < W; ++w) out[w] = r[w];
#else
    std::uint64_t u[W];
    next_lanes(u);
    for (int w = 0; w < W; ++w) {
      out[w] = static_cast<double>(u[w] >> 11) * 0x1.0p-53;
    }
#endif
  }

  /// Advances only lane `w` (scalar xoshiro step). Used for the data-
  /// dependent draws (metastability resolution) that fire per lane.
  std::uint64_t next_lane(int w) {
    const std::uint64_t result =
        Rng::rotl_(s_[0][w] + s_[3][w], 23) + s_[0][w];
    const std::uint64_t t = s_[1][w] << 17;
    s_[2][w] ^= s_[0][w];
    s_[3][w] ^= s_[1][w];
    s_[1][w] ^= s_[2][w];
    s_[0][w] ^= s_[3][w];
    s_[2][w] ^= t;
    s_[3][w] = Rng::rotl_(s_[3][w], 45);
    return result;
  }

  double uniform_lane(int w) {
    return static_cast<double>(next_lane(w) >> 11) * 0x1.0p-53;
  }

  /// Rng::bernoulli on lane `w` (consumes a draw only for p in (0,1)).
  bool bernoulli_lane(int w, double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_lane(w) < p;
  }

 private:
  double slow_lane_(int w, std::uint64_t u) {
    Rng r;
    for (int j = 0; j < 4; ++j) r.state_[j] = s_[j][w];
    const double x = r.gaussian_slow_(u);
    for (int j = 0; j < 4; ++j) s_[j][w] = r.state_[j];
    return x;
  }

#if VCOADC_SIMD_NATIVE
  using UV = typename simd::native_u64vec<W>::type;
  using DV = typename simd::native_vec<W>::type;

  /// Packed xoshiro256++ step for all lanes; the draw lands in *out. The
  /// rotates are spelled out and the result leaves through a pointer: a
  /// helper returning the vector type by value would draw -Wpsabi at every
  /// instantiation point, pragma regions notwithstanding.
  VCOADC_LANE_INLINE void next_v_(UV* out) {
    const UV sum = s_[0] + s_[3];
    *out = ((sum << 23) | (sum >> 41)) + s_[0];
    const UV t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = (s_[3] << 45) | (s_[3] >> 19);
  }

  UV s_[4] = {};  // state word j of lane w at s_[j][w]
#else
  std::uint64_t s_[4][W] = {};  // state word j of lane w at s_[j][w]
#endif
};

/// 64-bit FNV-1a hash, used to derive fork seeds from tags.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace vcoadc::util
