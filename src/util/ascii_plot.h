// Terminal plotting for waveforms (Fig. 16/18) and spectra (Fig. 17/18).
//
// The benchmark harnesses reproduce the paper's *figures* as ASCII charts so
// the "shape" claims (20 dB/dec slope, out-of-band mismatch tones, absence of
// idle tones) are visible directly in the bench output without a plotting
// stack.
#pragma once

#include <string>
#include <vector>

namespace vcoadc::util {

struct PlotOptions {
  int width = 100;        ///< plot area columns
  int height = 24;        ///< plot area rows
  bool log_x = false;     ///< logarithmic x axis (spectra)
  std::string title;
  std::string x_label;
  std::string y_label;
  double y_min = 0.0;     ///< used when clamp_y is true
  double y_max = 0.0;
  bool clamp_y = false;
};

/// Renders y(x) as a scatter/line chart using unicode-free ASCII.
/// x and y must be the same length; non-finite y values are skipped.
std::string ascii_plot(const std::vector<double>& x,
                       const std::vector<double>& y, const PlotOptions& opts);

/// Convenience: plots y against its sample index.
std::string ascii_plot(const std::vector<double>& y, const PlotOptions& opts);

}  // namespace vcoadc::util
