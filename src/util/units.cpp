#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vcoadc::util {

std::string si_format(double value, const std::string& unit) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 9> kPrefixes{{{1e12, "T"},
                                                    {1e9, "G"},
                                                    {1e6, "M"},
                                                    {1e3, "k"},
                                                    {1.0, ""},
                                                    {1e-3, "m"},
                                                    {1e-6, "u"},
                                                    {1e-9, "n"},
                                                    {1e-12, "p"}}};
  if (value == 0.0) return "0 " + unit;
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g %s%s", value / chosen->scale,
                chosen->symbol, unit.c_str());
  return buf;
}

std::string fixed_format(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

double db_power(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(ratio);
}

double db_amplitude(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(ratio);
}

double from_db_power(double db) { return std::pow(10.0, db / 10.0); }

double from_db_amplitude(double db) { return std::pow(10.0, db / 20.0); }

double enob_from_sndr_db(double sndr_db) { return (sndr_db - 1.76) / 6.02; }

double walden_fom_fj(double power_w, double sndr_db, double bandwidth_hz) {
  const double enob = enob_from_sndr_db(sndr_db);
  return power_w / (std::pow(2.0, enob) * 2.0 * bandwidth_hz) * 1e15;
}

}  // namespace vcoadc::util
