// Flow-wide structured diagnostics: the error-reporting substrate every
// stage boundary of the generator reports through (DESIGN.md §3f).
//
// The contract the flow promises (and the fault-injection harness
// enforces): a public driver entry point given malformed input returns a
// null/empty artifact plus one or more Diagnostics that say *which stage*
// rejected *which item* and *why* — it never aborts, throws, or produces
// NaN results silently. Interior code keeps `assert` for programmer
// contracts that validated inputs make unreachable; everything a caller
// can influence is validated at the stage boundary.
//
//   Diagnostic  one structured finding {severity, stage, item, reason}
//   DiagSink    thread-safe collector, hung off core::ExecContext so one
//               sink sees every stage of a run (including batch workers)
//   Checked<T>  value-or-diagnostics return wrapper for APIs that want
//               the diagnostics in the return value rather than a sink
//   FaultPlan   deterministic fault-injection hook keyed by stage name;
//               test-only, lets the harness corrupt any stage boundary
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vcoadc::util {

enum class Severity {
  kInfo,     ///< noteworthy, result unaffected
  kWarning,  ///< suspicious input or degraded result, run continued
  kError,    ///< stage refused; artifact is null/empty
};

const char* severity_name(Severity s);

/// One structured finding from a flow stage.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string stage;   ///< stage that reported, e.g. "spec", "netlist"
  std::string item;    ///< offending field/cell/net/instance; may be empty
  std::string reason;  ///< human-readable explanation

  /// "[error] netlist slice3/I7: unknown master 'NANDX9'"
  std::string to_string() const;
};

/// Thread-safe diagnostic collector. One sink is threaded through a whole
/// run via core::ExecContext, so batch workers, cached-stage builds and
/// the top-level driver all report into the same place.
class DiagSink {
 public:
  void add(Diagnostic d);
  void add(Severity severity, std::string stage, std::string item,
           std::string reason);
  void add_all(const std::vector<Diagnostic>& diags);

  /// Snapshot of everything collected so far, in arrival order.
  std::vector<Diagnostic> all() const;
  std::size_t size() const;
  std::size_t error_count() const;
  bool has_errors() const;
  bool empty() const;
  void clear();

  /// One line per diagnostic (Diagnostic::to_string), newline-terminated.
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Diagnostic> diags_;
};

/// Result<T>-style wrapper: either a value (ok) or the diagnostics that
/// explain why there is none. A value may still carry warnings.
template <typename T>
class Checked {
 public:
  Checked() = default;
  Checked(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  static Checked failure(Diagnostic d) {
    Checked c;
    c.diags_.push_back(std::move(d));
    return c;
  }
  static Checked failure(std::vector<Diagnostic> diags) {
    Checked c;
    c.diags_ = std::move(diags);
    return c;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok(). (Checked by the caller, like std::optional.)
  const T& value() const { return *value_; }
  T& value() { return *value_; }
  const T& value_or(const T& fallback) const {
    return value_.has_value() ? *value_ : fallback;
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }

  /// Copies this result's diagnostics into `sink` (null-safe).
  void report_to(DiagSink* sink) const {
    if (sink) sink->add_all(diags_);
  }

 private:
  std::optional<T> value_;
  std::vector<Diagnostic> diags_;
};

/// Deterministic fault-injection hook, keyed by stage name. Test-only:
/// the flow consults the plan (via core::ExecContext::faults) at each
/// stage boundary and, when the stage is armed, corrupts that stage's
/// input/artifact before validation — so the harness exercises the real
/// validators, not a parallel code path. A faulted stage build always
/// bypasses the artifact cache, so a poisoned artifact can never become
/// observable through it.
class FaultPlan {
 public:
  /// Arms `stage` for `times` injections (-1 = every time it is reached).
  void arm(std::string stage, int times = -1);

  /// True if `stage` is currently armed (does not consume a charge).
  bool armed(std::string_view stage) const;

  /// Consumes one charge for `stage` if armed; returns whether a fault
  /// fires. Thread-safe; counters are shared across threads.
  bool consume(std::string_view stage) const;

  /// Total faults fired so far (all stages).
  std::uint64_t injected() const;

 private:
  mutable std::mutex mutex_;
  // remaining < 0 means unlimited.
  mutable std::map<std::string, int, std::less<>> arms_;
  mutable std::uint64_t injected_ = 0;
};

}  // namespace vcoadc::util
