// SIMD dispatch shim for the batched (structure-of-arrays) transient engine.
//
// The batched modulator compiles one portable lane-lockstep kernel into
// four translation units with different codegen flags — scalar (tree
// vectorizer off), sse2 (baseline x86-64), avx2 (-mavx2), avx512
// (-mavx512f/dq/vl/bw) — and picks one at runtime. This header owns the
// tier model:
//
//   * compiled_cap()  - the VCOADC_SIMD CMake option
//                       (auto|avx512|avx2|sse2|scalar) baked in as a
//                       compile-time ceiling.
//   * cpu_tier()      - what the executing CPU supports (CPUID probe).
//   * env_cap()       - the VCOADC_SIMD environment variable, so a test run
//                       can force the portable path on an AVX2 host without
//                       a rebuild (ctest's scalar-fallback variant).
//   * active_tier()   - min of the three, cached; the dispatcher's choice.
//
// Bit-identity contract: no tier TU may contract a*b+c. AVX2 is requested
// without -mfma and baseline x86-64 has no FMA; -mavx512f *implies* 512-bit
// FMA, so the avx512 TU is additionally built with -ffp-contract=off (see
// src/msim/CMakeLists.txt). Every per-lane IEEE operation sequence is
// therefore identical in all four TUs, and which tier runs can never change
// a result bit — only how many lanes retire per cycle.
//
// vec<double, W> is the fixed-width value type the kernel's straight-line
// arithmetic uses: a plain array with elementwise operators, written so the
// auto-vectorizer can turn each operator into one packed instruction at the
// TU's ISA level, and so the scalar TU lowers it to the exact same scalar
// IEEE operations.
#pragma once

#include <cstddef>
#include <string>

namespace vcoadc::util::simd {

/// Instruction-set tiers, ordered: a higher tier strictly contains the
/// lower one. Values are stable (used in env/CMake parsing and BENCH JSON).
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

/// Human name, e.g. for the CLI epilogue and BENCH_JSON.
const char* tier_name(Tier t);

/// Native doubles per vector register at this tier (1 / 2 / 4 / 8).
constexpr int tier_width(Tier t) {
  return t == Tier::kAvx512
             ? 8
             : (t == Tier::kAvx2 ? 4 : (t == Tier::kSse2 ? 2 : 1));
}

/// Ceiling baked in by the VCOADC_SIMD CMake option.
Tier compiled_cap();

/// Highest tier the executing CPU supports.
Tier cpu_tier();

/// Ceiling from the VCOADC_SIMD environment variable ("scalar" | "sse2" |
/// "avx2" | "avx512" | "auto"/unset = no ceiling). Read once per process.
Tier env_cap();

/// The dispatch decision: min(compiled_cap, cpu_tier, env_cap), cached
/// after the first call (the test override below invalidates the cache).
Tier active_tier();

/// Monte-Carlo lane width the active tier prefers: 8 on avx512 (32 zmm
/// registers hold the kernel's live values without the spills PR 7 measured
/// at W=8 on avx2), 4 on avx2 (one ymm per live kernel value; wider spills),
/// 2 elsewhere (narrower tiers hit register pressure at 4, and even the
/// scalar tier batches 2 lanes to amortize the shared input-signal
/// evaluation). Measured, not derived.
int active_width();

/// Test hook: force active_tier() to `t` regardless of CPU/env (still
/// clamped to compiled_cap); pass a negative value to restore automatic
/// selection. Not thread-safe against concurrent active_tier() callers.
void set_tier_override_for_testing(int t);

/// One-line summary for --cache-stats-style epilogues, e.g.
/// "tier avx2 (width 4) | compiled cap avx2 | cpu avx2 | env -".
std::string runtime_summary();

// vec's methods must inline into each kernel tier's translation unit so
// they compile under that TU's -m flags (an out-of-line instantiation would
// be a comdat symbol: one TU's codegen would silently serve every tier).
#if defined(__GNUC__) || defined(__clang__)
#define VCOADC_SIMD_INLINE inline __attribute__((always_inline))
// Native GCC/Clang vector types: every elementwise operator and select is a
// guaranteed packed instruction at the TU's ISA level — the kernel's codegen
// no longer depends on the auto-vectorizer's if-conversion heuristics (GCC
// 12 fully unrolls W-sized loops and then refuses to if-convert the wrap
// selects, leaving data-dependent branches on the hot path).
#define VCOADC_SIMD_NATIVE 1
#else
#define VCOADC_SIMD_INLINE inline
#endif

#if VCOADC_SIMD_NATIVE
// vector_size cannot take a template-dependent size in GCC, so the three
// kernel widths are enumerated. native_u64vec is the matching integer-lane
// type (xoshiro state words, DAC bit masks).
template <int W>
struct native_vec;
template <>
struct native_vec<2> {
  typedef double type __attribute__((vector_size(16)));
};
template <>
struct native_vec<4> {
  typedef double type __attribute__((vector_size(32)));
};
template <>
struct native_vec<8> {
  typedef double type __attribute__((vector_size(64)));
};
template <int W>
struct native_u64vec;
template <>
struct native_u64vec<2> {
  typedef unsigned long long type __attribute__((vector_size(16)));
};
template <>
struct native_u64vec<4> {
  typedef unsigned long long type __attribute__((vector_size(32)));
};
template <>
struct native_u64vec<8> {
  typedef unsigned long long type __attribute__((vector_size(64)));
};
#endif

/// Fixed-width elementwise value type for the lockstep kernels. Each
/// operator performs the identical per-lane IEEE operation the scalar
/// modulator performs (contraction is never enabled — see the FMA note
/// above), so the representation can never change a result bit; with native
/// vectors it retires tier_width lanes per instruction.
template <int W>
struct vec {
#if VCOADC_SIMD_NATIVE
  typename native_vec<W>::type v;
#else
  double v[W];
#endif

  static VCOADC_SIMD_INLINE vec splat(double x) {
    vec r;
    for (int w = 0; w < W; ++w) r.v[w] = x;
    return r;
  }
  static VCOADC_SIMD_INLINE vec load(const double* p) {
    vec r;
    for (int w = 0; w < W; ++w) r.v[w] = p[w];
    return r;
  }
  VCOADC_SIMD_INLINE void store(double* p) const {
    for (int w = 0; w < W; ++w) p[w] = v[w];
  }
  double operator[](int w) const { return v[w]; }
#if !VCOADC_SIMD_NATIVE
  double& operator[](int w) { return v[w]; }
#endif

  friend VCOADC_SIMD_INLINE vec operator+(const vec& a, const vec& b) {
    vec r;
#if VCOADC_SIMD_NATIVE
    r.v = a.v + b.v;
#else
    for (int w = 0; w < W; ++w) r.v[w] = a.v[w] + b.v[w];
#endif
    return r;
  }
  friend VCOADC_SIMD_INLINE vec operator-(const vec& a, const vec& b) {
    vec r;
#if VCOADC_SIMD_NATIVE
    r.v = a.v - b.v;
#else
    for (int w = 0; w < W; ++w) r.v[w] = a.v[w] - b.v[w];
#endif
    return r;
  }
  friend VCOADC_SIMD_INLINE vec operator*(const vec& a, const vec& b) {
    vec r;
#if VCOADC_SIMD_NATIVE
    r.v = a.v * b.v;
#else
    for (int w = 0; w < W; ++w) r.v[w] = a.v[w] * b.v[w];
#endif
    return r;
  }
  friend VCOADC_SIMD_INLINE vec operator/(const vec& a, const vec& b) {
    vec r;
#if VCOADC_SIMD_NATIVE
    r.v = a.v / b.v;
#else
    for (int w = 0; w < W; ++w) r.v[w] = a.v[w] / b.v[w];
#endif
    return r;
  }
  friend VCOADC_SIMD_INLINE vec operator+(const vec& a, double b) {
    return a + splat(b);
  }
  friend VCOADC_SIMD_INLINE vec operator-(const vec& a, double b) {
    return a - splat(b);
  }
  friend VCOADC_SIMD_INLINE vec operator*(const vec& a, double b) {
    return a * splat(b);
  }
  friend VCOADC_SIMD_INLINE vec operator/(const vec& a, double b) {
    return a / splat(b);
  }
  friend VCOADC_SIMD_INLINE vec operator+(double a, const vec& b) {
    return splat(a) + b;
  }
  friend VCOADC_SIMD_INLINE vec operator-(double a, const vec& b) {
    return splat(a) - b;
  }
  friend VCOADC_SIMD_INLINE vec operator*(double a, const vec& b) {
    return splat(a) * b;
  }
  VCOADC_SIMD_INLINE vec& operator+=(const vec& b) {
    return *this = *this + b;
  }
};

/// Elementwise `a >= c ? t : f`. A bitwise select (compare + blend, no
/// arithmetic), so it cannot perturb lane values; it exists because GCC 12
/// will not reliably if-convert the equivalent scalar ternary, leaving a
/// data-dependent branch per lane on the wrap hot path. NaN compares false
/// and selects `f`, matching the ternary.
template <int W>
VCOADC_SIMD_INLINE vec<W> select_ge(const vec<W>& a, double c,
                                    const vec<W>& t, const vec<W>& f) {
  vec<W> r;
#if VCOADC_SIMD_NATIVE
  r.v = (a.v >= c) ? t.v : f.v;
#else
  for (int w = 0; w < W; ++w) r.v[w] = a.v[w] >= c ? t.v[w] : f.v[w];
#endif
  return r;
}

/// Elementwise `a < c ? t : f` (same contract as select_ge).
template <int W>
VCOADC_SIMD_INLINE vec<W> select_lt(const vec<W>& a, double c,
                                    const vec<W>& t, const vec<W>& f) {
  vec<W> r;
#if VCOADC_SIMD_NATIVE
  r.v = (a.v < c) ? t.v : f.v;
#else
  for (int w = 0; w < W; ++w) r.v[w] = a.v[w] < c ? t.v[w] : f.v[w];
#endif
  return r;
}

/// Elementwise max against a scalar floor — same select std::max performs,
/// so it lowers to maxpd without changing the scalar result.
template <int W>
VCOADC_SIMD_INLINE vec<W> vmax(const vec<W>& a, double floor_v) {
  return select_lt(a, floor_v, vec<W>::splat(floor_v), a);
}

// Vector-comparand variants: identical contracts to the scalar-comparand
// forms above, but each lane compares against its own threshold. Used by the
// heterogeneous-lane path (PVT corners / amplitude sweeps batched together),
// where per-lane run constants replace the formerly shared scalars. With
// every lane holding the same value these lower to the exact same compare +
// blend as the scalar-comparand forms — homogeneous batches see identical
// codegen and identical bits.

/// Elementwise `a >= c ? t : f` with a per-lane comparand.
template <int W>
VCOADC_SIMD_INLINE vec<W> select_ge(const vec<W>& a, const vec<W>& c,
                                    const vec<W>& t, const vec<W>& f) {
  vec<W> r;
#if VCOADC_SIMD_NATIVE
  r.v = (a.v >= c.v) ? t.v : f.v;
#else
  for (int w = 0; w < W; ++w) r.v[w] = a.v[w] >= c.v[w] ? t.v[w] : f.v[w];
#endif
  return r;
}

/// Elementwise `a < c ? t : f` with a per-lane comparand.
template <int W>
VCOADC_SIMD_INLINE vec<W> select_lt(const vec<W>& a, const vec<W>& c,
                                    const vec<W>& t, const vec<W>& f) {
  vec<W> r;
#if VCOADC_SIMD_NATIVE
  r.v = (a.v < c.v) ? t.v : f.v;
#else
  for (int w = 0; w < W; ++w) r.v[w] = a.v[w] < c.v[w] ? t.v[w] : f.v[w];
#endif
  return r;
}

/// Elementwise max against a per-lane floor.
template <int W>
VCOADC_SIMD_INLINE vec<W> vmax(const vec<W>& a, const vec<W>& floor_v) {
  return select_lt(a, floor_v, floor_v, a);
}

}  // namespace vcoadc::util::simd
