// Fixed-size work-queue thread pool for the parallel evaluation engine.
//
// Design constraints, in order:
//   * deterministic callers: the pool never reorders *results* (callers
//     index their output by task id), only execution;
//   * exception transparency: a task that throws surfaces the exception at
//     future::get() / parallel_for_each(), never std::terminate;
//   * zero-worker fallback: ThreadPool(0) executes every task inline on the
//     submitting thread, so serial and parallel paths share one code path
//     (and `threads = 1` configurations carry no synchronization cost);
//   * instrumentation: executed-task count, summed busy time and the
//     high-water queue depth are cheap to collect and exposed via stats(),
//     so batch drivers can report worker utilization.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vcoadc::util {

/// Counters accumulated over the pool's lifetime.
struct ThreadPoolStats {
  std::uint64_t tasks_executed = 0;
  double busy_seconds = 0;         ///< wall time inside tasks, summed
  std::size_t max_queue_depth = 0; ///< high-water mark of pending tasks
};

class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means "run every task inline on the
  /// submitting thread" (the serial fallback).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_workers();

  std::size_t num_workers() const { return workers_.size(); }

  /// Pending (not yet started) tasks.
  std::size_t queue_depth() const;

  ThreadPoolStats stats() const;

  /// Schedules `f` and returns a future for its result. Exceptions thrown
  /// by the task are captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // Stats are recorded inside the wrapper, *before* the packaged_task
    // fulfils its promise: anyone who observed the future as ready then
    // also observes this task in stats().
    auto timed = [this, fn = std::forward<F>(f)]() mutable -> R {
      const auto start = std::chrono::steady_clock::now();
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          record_task(start);
        } else {
          R r = fn();
          record_task(start);
          return r;
        }
      } catch (...) {
        record_task(start);  // a throwing task still executed
        throw;               // packaged_task stores it for future::get()
      }
    };
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::move(timed));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();
  void record_task(std::chrono::steady_clock::time_point start);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Stats, guarded by mutex_.
  std::uint64_t tasks_executed_ = 0;
  double busy_seconds_ = 0;
  std::size_t max_queue_depth_ = 0;
};

/// Runs body(i) for i in [0, n) across the pool and waits for all of them.
/// If any task throws, every task still runs to completion and the first
/// exception (by index) is rethrown here.
template <typename F>
void parallel_for_each(ThreadPool& pool, std::size_t n, F&& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&body, i] { body(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace vcoadc::util
