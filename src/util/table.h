// ASCII table and CSV rendering used by every benchmark harness to print
// the paper's tables in a shape directly comparable to the publication.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace vcoadc::util {

/// A simple column-aligned text table with an optional title and footnotes.
///
/// Usage:
///   Table t("Table 3: ...");
///   t.set_header({"Process", "fs", "SNDR"});
///   t.add_row({"40 nm", "750 MHz", "69.5 dB"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_footnote(std::string note);

  /// Renders with box-drawing separators; pads ragged rows with blanks.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const;
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

}  // namespace vcoadc::util
