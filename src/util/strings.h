// Small string utilities shared by the netlist parser/writer and the
// report generators. Kept dependency-free.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vcoadc::util {

/// Splits on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_$]*.
bool is_identifier(std::string_view s);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

}  // namespace vcoadc::util
