#include "util/diag.h"

namespace vcoadc::util {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out = "[";
  out += severity_name(severity);
  out += "] ";
  out += stage;
  if (!item.empty()) {
    out += " ";
    out += item;
  }
  out += ": ";
  out += reason;
  return out;
}

void DiagSink::add(Diagnostic d) {
  std::lock_guard<std::mutex> lock(mutex_);
  diags_.push_back(std::move(d));
}

void DiagSink::add(Severity severity, std::string stage, std::string item,
                   std::string reason) {
  add(Diagnostic{severity, std::move(stage), std::move(item),
                 std::move(reason)});
}

void DiagSink::add_all(const std::vector<Diagnostic>& diags) {
  std::lock_guard<std::mutex> lock(mutex_);
  diags_.insert(diags_.end(), diags.begin(), diags.end());
}

std::vector<Diagnostic> DiagSink::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diags_;
}

std::size_t DiagSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diags_.size();
}

std::size_t DiagSink::error_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) n += (d.severity == Severity::kError);
  return n;
}

bool DiagSink::has_errors() const { return error_count() > 0; }

bool DiagSink::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diags_.empty();
}

void DiagSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  diags_.clear();
}

std::string DiagSink::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_string();
    out += "\n";
  }
  return out;
}

void FaultPlan::arm(std::string stage, int times) {
  std::lock_guard<std::mutex> lock(mutex_);
  arms_[std::move(stage)] = times;
}

bool FaultPlan::armed(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = arms_.find(stage);
  return it != arms_.end() && it->second != 0;
}

bool FaultPlan::consume(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = arms_.find(stage);
  if (it == arms_.end() || it->second == 0) return false;
  if (it->second > 0) --it->second;
  ++injected_;
  return true;
}

std::uint64_t FaultPlan::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

}  // namespace vcoadc::util
