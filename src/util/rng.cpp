#include "util/rng.h"

namespace vcoadc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
}

Rng Rng::fork(std::string_view tag) {
  return Rng(next_u64() ^ fnv1a64(tag));
}

double Rng::gaussian_slow_(std::uint64_t u) {
  for (;;) {
    const std::size_t idx = static_cast<std::size_t>(u & 255u);
    const bool neg = (u & 256u) != 0;
    const std::uint64_t rabs = u >> 12;
    if (rabs < detail::kZig.k[idx]) {
      const double x = static_cast<double>(rabs) * detail::kZig.w[idx];
      return neg ? -x : x;
    }
    if (idx == 0) {
      // Tail beyond kZigR: Marsaglia's exponential-rejection tail sampler.
      // uniform() can return exactly 0; shift to (0, 1] to keep log finite.
      double xx;
      double yy;
      do {
        const double u1 =
            (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
        const double u2 =
            (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
        xx = -std::log(u1) * (1.0 / detail::kZigR);
        yy = -std::log(u2);
      } while (yy + yy < xx * xx);
      return neg ? -(detail::kZigR + xx) : (detail::kZigR + xx);
    }
    // Wedge between layer idx and the one below: accept against the pdf.
    const double x = static_cast<double>(rabs) * detail::kZig.w[idx];
    const double f_hi = detail::kZig.f[idx - 1];
    const double f_lo = detail::kZig.f[idx];
    if (f_lo + uniform() * (f_hi - f_lo) < std::exp(-0.5 * x * x)) {
      return neg ? -x : x;
    }
    u = next_u64();
  }
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace vcoadc::util
