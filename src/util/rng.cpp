#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace vcoadc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
}

Rng Rng::fork(std::string_view tag) {
  return Rng(next_u64() ^ fnv1a64(tag));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0x1.0p-60);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace vcoadc::util
