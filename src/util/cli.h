// Minimal command-line argument parser for the example tools.
// Supports `--name=value`, `--name value`, boolean `--flag`, and
// positional arguments; unknown-flag detection for helpful errors.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vcoadc::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const argv[]);

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag,
                  const std::string& fallback = {}) const;
  double get_double(const std::string& flag, double fallback) const;
  int get_int(const std::string& flag, int fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Flags present on the command line that are not in `known` (including
  /// the leading dashes as typed).
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name (no dashes) -> value
  std::vector<std::string> positional_;
};

}  // namespace vcoadc::util
