#include "util/table.h"

#include <algorithm>

namespace vcoadc::util {
namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::add_footnote(std::string note) {
  footnotes_.push_back(std::move(note));
}

std::size_t Table::num_cols() const {
  std::size_t n = header_.size();
  for (const auto& row : rows_) n = std::max(n, row.size());
  return n;
}

void Table::print(std::ostream& os) const {
  const std::size_t cols = num_cols();
  if (cols == 0) return;

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = (i < row.size()) ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
  for (const auto& note : footnotes_) os << "* " << note << '\n';
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace vcoadc::util
