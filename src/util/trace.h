// Per-stage flow tracing: scoped spans at every stage boundary of the
// design flow (netlist generation, floorplan, placement, routing,
// simulation, reporting) collected into one thread-safe sink.
//
// Spans nest per thread: a span opened while another span of the same
// Trace is open on the same thread becomes its child, which is how one
// `report` span ends up owning `synthesis` which owns `floorplan` /
// `placement` / `route`. Spans opened on worker threads (batch fan-outs)
// have no parent and list at the root.
//
// Two renderings:
//   * render_tree(): human-readable indented summary. Sibling spans with
//     the same name collapse into one line (count, total/min/max wall
//     time, summed cache hits/misses) so a 1000-draw Monte-Carlo batch
//     prints as one `sim_run x1000` line, not a thousand.
//   * render_jsonl(): one JSON object per completed span, in completion
//     order, for machine ingestion.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vcoadc::util {

struct TraceEvent {
  std::string name;     ///< stage name, e.g. "netlist", "route"
  std::string detail;   ///< freeform annotation, e.g. "key=0x1a2b"
  double start_s = 0;   ///< seconds since the Trace was constructed
  double dur_s = 0;     ///< wall time inside the span
  int parent = -1;      ///< index of the enclosing span; -1 = root
  int cache_hit = -1;   ///< 1 = artifact-cache hit, 0 = miss, -1 = n/a
  std::size_t bytes = 0;  ///< approximate artifact size, 0 = unknown
};

class Trace {
 public:
  Trace();

  /// Opens a span and returns its token. Thread-safe; the span's parent is
  /// the innermost span currently open *on this thread* for this Trace.
  int begin(const std::string& name);

  /// Closes the span. `detail`, `cache_hit` and `bytes` land in the event.
  void end(int token, const std::string& detail = {}, int cache_hit = -1,
           std::size_t bytes = 0);

  /// Records a zero-duration event (e.g. a counter snapshot).
  void instant(const std::string& name, const std::string& detail = {});

  /// Completed + open events, by begin order. Open spans have dur_s = 0.
  std::vector<TraceEvent> events() const;

  bool empty() const;

  std::string render_tree() const;
  std::string render_jsonl() const;

 private:
  double now_s() const;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Null-safe: a TraceSpan over a null Trace* is a no-op, so
/// flow code can trace unconditionally and callers opt in by providing a
/// sink.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, const std::string& name)
      : trace_(trace), token_(trace ? trace->begin(name) : -1) {}
  ~TraceSpan() {
    if (trace_) trace_->end(token_, detail_, cache_hit_, bytes_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Annotates the span; shows in both renderings.
  void note(const std::string& detail) { detail_ = detail; }
  /// Marks the span as an artifact-cache hit or miss, with the artifact's
  /// approximate size.
  void cache(bool hit, std::size_t bytes) {
    cache_hit_ = hit ? 1 : 0;
    bytes_ = bytes;
  }

 private:
  Trace* trace_;
  int token_;
  std::string detail_;
  int cache_hit_ = -1;
  std::size_t bytes_ = 0;
};

}  // namespace vcoadc::util
