// Minimal socket transport layer for the evaluation service.
//
// The serve loop multiplexes many clients onto one warm ExecContext; this
// file owns the OS-facing half of that: endpoint parsing (`tcp:<port>` or
// a unix-socket path), a listening socket, and an accepted-connection
// wrapper with buffered newline-delimited line I/O. Everything is
// poll-sliced so a caller-owned stop flag (the graceful-shutdown signal)
// is honored within one slice even while blocked on a quiet peer.
//
// Failure policy mirrors the rest of the repo: no exceptions across the
// boundary, no process-killing signals. Writes use MSG_NOSIGNAL (EPIPE
// surfaces as a false return, never SIGPIPE), and ignore_sigpipe() covers
// the stdio transport whose sink is not a socket.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace vcoadc::util::net {

/// Parsed listen/connect endpoint. `tcp:<port>` binds/dials loopback
/// (port 0 = ephemeral, resolved via Listener::port()); anything else is
/// a unix-domain socket path, with an optional `unix:` prefix.
struct Endpoint {
  bool ok = false;
  std::string error;  ///< parse failure reason when !ok
  bool is_tcp = false;
  int tcp_port = 0;
  std::string unix_path;

  /// Human-readable form for logs ("tcp:127.0.0.1:8080" / the path).
  std::string describe() const;
};

Endpoint parse_endpoint(std::string_view spec);

/// Process-wide SIGPIPE -> SIG_IGN (idempotent). A client closing its
/// pipe must surface as a failed write, never kill the service.
void ignore_sigpipe();

/// One accepted (or dialed) stream connection: RAII fd plus a buffered
/// line reader. Move-only.
class Connection {
 public:
  enum class ReadStatus {
    kLine,   ///< a complete '\n'-terminated line was read (stripped)
    kEof,    ///< peer closed; a trailing partial line is dropped
    kStop,   ///< *stop became true before a full line arrived
    kError,  ///< read failed
  };

  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(Connection&& o) noexcept;
  Connection& operator=(Connection&& o) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads one line, polling in `poll_ms` slices and checking `stop`
  /// between slices (null stop = block indefinitely).
  ReadStatus read_line(std::string* line,
                       const std::atomic<bool>* stop = nullptr,
                       int poll_ms = 200);

  /// Writes every byte (short writes and EINTR are retried). False on any
  /// error — a dead peer reports here instead of raising SIGPIPE.
  bool write_all(std::string_view bytes);

  /// Writes `line` plus the '\n' terminator.
  bool write_line(std::string_view line);

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

/// Listening socket over either endpoint kind. A stale unix socket file
/// left by a killed server is unlinked before bind (only if it really is
/// a socket); the path is unlinked again on close so a clean shutdown
/// leaves nothing behind. TCP binds loopback only — the service carries
/// no authentication, so it must not listen on public interfaces.
class Listener {
 public:
  enum class AcceptStatus { kAccepted, kStop, kError };

  Listener() = default;
  ~Listener();
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Opens a listening socket on `ep`. Invalid listener + `*error` on
  /// failure.
  static Listener listen(const Endpoint& ep, std::string* error);

  bool valid() const { return fd_ >= 0; }
  /// Bound TCP port (resolves tcp:0 to the kernel-assigned port); 0 for
  /// unix endpoints.
  int port() const { return port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Accepts one connection, polling in `poll_ms` slices against `stop`.
  AcceptStatus accept(Connection* out, const std::atomic<bool>* stop,
                      int poll_ms = 200);

  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string unix_path_;  ///< unlinked on close when non-empty
};

/// Dials `ep`; invalid Connection + `*error` on failure.
Connection dial(const Endpoint& ep, std::string* error);

}  // namespace vcoadc::util::net
