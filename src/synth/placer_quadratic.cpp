#include "synth/placer_quadratic.h"

#include <algorithm>
#include <cmath>

#include "synth/net_db.h"
#include "util/rng.h"

namespace vcoadc::synth {
namespace {

struct Spring {
  int other;      // flat index of the connected cell
  double weight;  // spring constant
};

/// Builds star-model springs per cell from the signal nets: each net of k
/// pins contributes k springs of weight 1/(k-1) between every pin and the
/// (implicit) star centre; collapsing the star yields pairwise weights
/// 2/(k(k-1))... we use the standard clique-with-1/(k-1) approximation.
std::vector<std::vector<Spring>> build_springs(const NetDb& db) {
  std::vector<std::vector<Spring>> springs(
      static_cast<std::size_t>(db.num_cells()));
  for (int n = 0; n < db.num_nets(); ++n) {
    const auto cells = db.members(n);
    const std::size_t k = cells.size();
    if (k < 2) continue;
    const double w = 1.0 / static_cast<double>(k - 1);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        springs[static_cast<std::size_t>(cells[a])].push_back({cells[b], w});
        springs[static_cast<std::size_t>(cells[b])].push_back({cells[a], w});
      }
    }
  }
  return springs;
}

}  // namespace

Placement place_quadratic(const std::vector<netlist::FlatInstance>& flat,
                          const Floorplan& fp,
                          const QuadraticPlacerOptions& opts) {
  const NetDb db(flat);
  return place_quadratic(flat, fp, opts, db);
}

Placement place_quadratic(const std::vector<netlist::FlatInstance>& flat,
                          const Floorplan& fp,
                          const QuadraticPlacerOptions& opts,
                          const NetDb& db) {
  Placement pl;
  pl.cells.resize(flat.size());
  for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
    pl.cells[static_cast<std::size_t>(i)].flat_index = i;
  }

  // Region assignment per cell.
  std::vector<const PlacedRegion*> region_of(flat.size(), nullptr);
  for (const PlacedRegion& r : fp.regions) {
    for (int m : r.spec.members) {
      region_of[static_cast<std::size_t>(m)] = &r;
    }
  }

  const auto springs = build_springs(db);

  // Initial positions: region centres with a small deterministic spread so
  // the Jacobi solve does not start degenerate.
  util::Rng rng(opts.seed);
  std::vector<double> x(flat.size()), y(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const PlacedRegion* r = region_of[i];
    const Point c = (r != nullptr) ? r->rect.center() : fp.die.center();
    const double rx = (r != nullptr) ? r->rect.w : fp.die.w;
    const double ry = (r != nullptr) ? r->rect.h : fp.die.h;
    x[i] = c.x + rng.uniform(-0.25, 0.25) * rx;
    y[i] = c.y + rng.uniform(-0.25, 0.25) * ry;
  }

  // Jacobi iterations: x_i = (sum w x_j + a cx) / (sum w + a).
  for (int iter = 0; iter < opts.solver_iterations; ++iter) {
    std::vector<double> nx = x, ny = y;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      const PlacedRegion* r = region_of[i];
      const Point c = (r != nullptr) ? r->rect.center() : fp.die.center();
      double sw = 0, sx = 0, sy = 0;
      for (const Spring& s : springs[i]) {
        sw += s.weight;
        sx += s.weight * x[static_cast<std::size_t>(s.other)];
        sy += s.weight * y[static_cast<std::size_t>(s.other)];
      }
      const double a =
          std::max(1e-6, opts.anchor_weight * std::max(sw, 1.0));
      nx[i] = (sx + a * c.x) / (sw + a);
      ny[i] = (sy + a * c.y) / (sw + a);
      // Clamp into the region so legalization stays local.
      if (r != nullptr) {
        nx[i] = std::clamp(nx[i], r->rect.x, r->rect.x2());
        ny[i] = std::clamp(ny[i], r->rect.y, r->rect.y2());
      }
    }
    x.swap(nx);
    y.swap(ny);
  }

  // Legalization per region: order cells by (row estimate, x), then pack
  // rows left-to-right on the site grid.
  const double row_h = fp.row_height_m;
  const double site = fp.site_width_m;
  for (const PlacedRegion& r : fp.regions) {
    // Row slots.
    std::vector<double> row_y;
    double ry = fp.die.y +
                std::ceil((r.rect.y - fp.die.y) / row_h - 1e-9) * row_h;
    for (; ry + row_h <= r.rect.y2() + 1e-12; ry += row_h) {
      row_y.push_back(ry);
    }
    if (row_y.empty()) {
      pl.overflow = true;
      continue;
    }
    // Order members by solved y then x.
    std::vector<int> order = r.spec.members;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ya = y[static_cast<std::size_t>(a)];
      const double yb = y[static_cast<std::size_t>(b)];
      if (std::fabs(ya - yb) > row_h / 2) return ya < yb;
      return x[static_cast<std::size_t>(a)] < x[static_cast<std::size_t>(b)];
    });
    std::size_t row = 0;
    double cursor = r.rect.x;
    for (int idx : order) {
      const auto& cell = *flat[static_cast<std::size_t>(idx)].cell;
      const double w = std::ceil(cell.width_m / site - 1e-9) * site;
      if (cursor + w > r.rect.x2() + 1e-12 && cursor > r.rect.x) {
        ++row;
        cursor = r.rect.x;
        if (row >= row_y.size()) {
          row = row_y.size() - 1;
          cursor = r.rect.x2();
          pl.overflow = true;
        }
      }
      PlacedCell& pc = pl.cells[static_cast<std::size_t>(idx)];
      pc.rect = {cursor, row_y[row], w, row_h};
      pc.row = static_cast<int>(std::lround((row_y[row] - fp.die.y) / row_h));
      pc.region = r.spec.name;
      cursor += w;
    }
  }

  // Light HPWL swap refinement between equal-width cells of one region.
  if (opts.refine_passes > 0) {
    refine_equal_width_swaps(db, fp.regions, opts.refine_passes, rng, pl);
  }
  return pl;
}

}  // namespace vcoadc::synth
