#include "synth/floorplan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/strings.h"

namespace vcoadc::synth {
namespace {

double snap_down(double v, double grid) {
  if (grid <= 0) return v;
  return std::floor(v / grid + 1e-9) * grid;
}

double snap_up(double v, double grid) {
  if (grid <= 0) return v;
  return std::ceil(v / grid - 1e-9) * grid;
}

struct Job {
  std::vector<int> region_ids;  // indices into the spec vector
  Rect rect;
};

}  // namespace

std::vector<RegionSpec> partition_into_regions(
    const std::vector<netlist::FlatInstance>& flat) {
  std::map<std::string, RegionSpec> by_name;
  for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
    const auto& fi = flat[static_cast<std::size_t>(i)];
    const bool is_group = fi.cell->is_resistor;
    std::string name = is_group ? fi.group : fi.power_domain;
    if (name.empty()) name = is_group ? "GRP_DEFAULT" : "PD_VDD";
    RegionSpec& spec = by_name[name];
    if (spec.name.empty()) {
      spec.name = name;
      spec.is_group = is_group;
    }
    spec.members.push_back(i);
    spec.cell_area_m2 += fi.cell->area_m2();
    spec.max_cell_width_m = std::max(spec.max_cell_width_m, fi.cell->width_m);
  }
  std::vector<RegionSpec> out;
  out.reserve(by_name.size());
  for (auto& [name, spec] : by_name) out.push_back(std::move(spec));
  return out;
}

const PlacedRegion* Floorplan::find(const std::string& name) const {
  for (const PlacedRegion& r : regions) {
    if (r.spec.name == name) return &r;
  }
  return nullptr;
}

double Floorplan::region_area_fraction() const {
  double a = 0;
  for (const PlacedRegion& r : regions) a += r.rect.area();
  return (die.area() > 0) ? a / die.area() : 0.0;
}

Floorplan make_floorplan(const std::vector<RegionSpec>& regions,
                         const FloorplanOptions& opts) {
  assert(!regions.empty());
  assert(opts.target_utilization > 0 && opts.target_utilization < 1.0);

  // Target area per region; every region must hold at least one row that
  // fits its widest cell.
  std::vector<double> target(regions.size());
  double total = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const double min_area =
        std::max(regions[i].max_cell_width_m, opts.site_width_m) *
        opts.row_height_m / opts.target_utilization;
    target[i] = std::max(regions[i].cell_area_m2 / opts.target_utilization,
                         min_area);
    total += target[i];
  }

  Floorplan fp;
  fp.row_height_m = opts.row_height_m;
  fp.site_width_m = opts.site_width_m;
  // Horizontal geometry snaps to row PAIRS so that every region boundary
  // lands on an even row line - even lines carry the shared VSS rail, so
  // vertically abutting power domains never collide power rails.
  const double row_pair = 2.0 * opts.row_height_m;
  const double die_w =
      snap_up(std::sqrt(total / opts.aspect_ratio), opts.site_width_m);
  const double die_h = snap_up(total / die_w, row_pair);
  fp.die = {0, 0, die_w, die_h};
  fp.regions.resize(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    fp.regions[i].spec = regions[i];
  }

  // Recursive area bisection over the die.
  std::vector<int> all(regions.size());
  std::iota(all.begin(), all.end(), 0);
  // Deterministic ordering: biggest first so the greedy halving balances.
  std::sort(all.begin(), all.end(), [&](int a, int b) {
    if (target[static_cast<std::size_t>(a)] !=
        target[static_cast<std::size_t>(b)]) {
      return target[static_cast<std::size_t>(a)] >
             target[static_cast<std::size_t>(b)];
    }
    return regions[static_cast<std::size_t>(a)].name <
           regions[static_cast<std::size_t>(b)].name;
  });

  std::vector<Job> stack;
  stack.push_back({all, fp.die});
  while (!stack.empty()) {
    Job job = std::move(stack.back());
    stack.pop_back();
    if (job.region_ids.size() == 1) {
      fp.regions[static_cast<std::size_t>(job.region_ids[0])].rect = job.rect;
      continue;
    }
    // Greedy balanced split of the id list by target area.
    std::vector<int> left, right;
    double a_left = 0, a_right = 0;
    for (int id : job.region_ids) {
      if (a_left <= a_right) {
        left.push_back(id);
        a_left += target[static_cast<std::size_t>(id)];
      } else {
        right.push_back(id);
        a_right += target[static_cast<std::size_t>(id)];
      }
    }
    const double frac = a_left / (a_left + a_right);
    double min_left = 0, min_right = 0;
    for (int id : left) {
      min_left = std::max(min_left,
                          regions[static_cast<std::size_t>(id)].max_cell_width_m);
    }
    for (int id : right) {
      min_right = std::max(
          min_right, regions[static_cast<std::size_t>(id)].max_cell_width_m);
    }
    Rect ra = job.rect, rb = job.rect;
    // Prefer the cut direction whose minimum-size constraints can be met:
    // a vertical cut must leave each side wide enough for its widest cell,
    // a horizontal cut must leave each side at least one row tall.
    const double row_pair = 2.0 * opts.row_height_m;
    const bool v_ok =
        job.rect.w >= min_left + min_right + 2 * opts.site_width_m;
    const bool h_ok = job.rect.h >= 2 * row_pair;
    const bool vertical = v_ok && (job.rect.w >= job.rect.h || !h_ok);
    if (vertical) {
      double cut = snap_down(job.rect.w * frac, opts.site_width_m);
      cut = std::clamp(cut, snap_up(min_left, opts.site_width_m),
                       snap_down(job.rect.w - min_right, opts.site_width_m));
      ra.w = cut;
      rb.x = job.rect.x + cut;
      rb.w = job.rect.w - cut;
    } else {
      double cut = snap_down(job.rect.h * frac, row_pair);
      cut = std::clamp(cut, row_pair,
                       std::max(row_pair, job.rect.h - row_pair));
      ra.h = cut;
      rb.y = job.rect.y + cut;
      rb.h = job.rect.h - cut;
    }
    stack.push_back({std::move(left), ra});
    stack.push_back({std::move(right), rb});
  }
  return fp;
}

std::string write_floorplan_spec(const Floorplan& fp) {
  std::ostringstream os;
  os << "# Floorplan specification (power domains / component groups)\n";
  os << "# Units: micrometres\n";
  auto um = [](double m) { return m * 1e6; };
  os << "DIE 0.000 0.000 " << um(fp.die.w) << " " << um(fp.die.h) << "\n";
  for (const PlacedRegion& r : fp.regions) {
    os << (r.spec.is_group ? "GROUP " : "POWER_DOMAIN ") << r.spec.name << " "
       << um(r.rect.x) << " " << um(r.rect.y) << " " << um(r.rect.w) << " "
       << um(r.rect.h) << " cells=" << r.spec.members.size() << "\n";
  }
  os << util::format("GRID row_um=%.6f site_um=%.6f\n", fp.row_height_m * 1e6,
                     fp.site_width_m * 1e6);
  return os.str();
}

FloorplanParseResult parse_floorplan_spec(const std::string& text) {
  FloorplanParseResult res;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool saw_die = false;
  auto fail = [&](const std::string& msg) {
    res.ok = false;
    res.error = util::format("line %d: %s", line_no, msg.c_str());
  };
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = util::split(util::trim(line), " \t");
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kw = tokens[0];
    auto um = [](const std::string& s) { return std::atof(s.c_str()) * 1e-6; };
    if (kw == "DIE") {
      if (tokens.size() < 5) {
        fail("DIE needs 4 coordinates");
        return res;
      }
      res.floorplan.die = {um(tokens[1]), um(tokens[2]), um(tokens[3]),
                           um(tokens[4])};
      saw_die = true;
    } else if (kw == "POWER_DOMAIN" || kw == "GROUP") {
      if (tokens.size() < 6) {
        fail(kw + " needs a name and 4 coordinates");
        return res;
      }
      PlacedRegion region;
      region.spec.name = tokens[1];
      region.spec.is_group = (kw == "GROUP");
      region.rect = {um(tokens[2]), um(tokens[3]), um(tokens[4]),
                     um(tokens[5])};
      res.floorplan.regions.push_back(std::move(region));
    } else if (kw == "GRID") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto kv = util::split(tokens[i], "=");
        if (kv.size() != 2) continue;
        if (kv[0] == "row_um") {
          res.floorplan.row_height_m = std::atof(kv[1].c_str()) * 1e-6;
        }
        if (kv[0] == "site_um") {
          res.floorplan.site_width_m = std::atof(kv[1].c_str()) * 1e-6;
        }
      }
    } else {
      fail("unknown directive '" + kw + "'");
      return res;
    }
  }
  if (!saw_die) {
    res.error = "missing DIE directive";
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace vcoadc::synth
