// Row-based detailed placement with power-domain region constraints.
//
// This is the APR stage of Fig. 9, restricted to what the paper's circuit
// needs: every cell is placed in a standard-cell row *inside its power
// domain's (or component group's) region*, so that P/G rails never short
// across domains (the Sec. 3.3 failure mode of naive digital APR).
//
// Pipeline per region:
//   1. connectivity ordering   - iterative barycenter passes on a 1-D
//                                ordering of the region's cells
//   2. serpentine row packing  - fills the region's rows boustrophedon so
//                                neighbours in the ordering stay adjacent
//   3. greedy swap refinement  - HPWL-improving pairwise swaps
//
// A `respect_regions = false` mode reproduces the oversimplified prior flow
// (everything in one die-wide region); the DRC then reports the rail-short
// violations, which is the paper's argument for PD-aware synthesis.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "synth/floorplan.h"
#include "synth/net_db.h"

namespace vcoadc::util {
class Rng;
}

namespace vcoadc::synth {

struct PlacedCell {
  int flat_index = -1;  ///< index into the flat instance vector
  Rect rect;
  int row = -1;               ///< global row index on the die row grid
  std::string region;         ///< region the cell was assigned to
};

struct PlacementOptions {
  bool respect_regions = true;
  int barycenter_passes = 6;
  int refine_passes = 3;
  std::uint64_t seed = 1;
};

struct Placement {
  std::vector<PlacedCell> cells;  ///< one per flat instance, same order
  bool overflow = false;  ///< true if some region could not hold its cells
};

/// Places every flat instance. `flat` and the floorplan's RegionSpec member
/// indices must refer to the same vector.
Placement place(const std::vector<netlist::FlatInstance>& flat,
                const Floorplan& fp, const PlacementOptions& opts);

/// As above, with a prebuilt net database over the same `flat` vector (the
/// flow builds one NetDb and shares it across all stages).
Placement place(const std::vector<netlist::FlatInstance>& flat,
                const Floorplan& fp, const PlacementOptions& opts,
                const NetDb& db);

/// Total half-perimeter wirelength of all signal nets for a placement.
/// Supply-class nets (VDD/VSS/VREFP/VCTRL*/VBUF and their hierarchical
/// aliases) are excluded - they route as rails/meshes, not signal wires.
double total_hpwl(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl);

/// The one HPWL definition every stage shares: for each signal net, the
/// half-perimeter of the bounding box of its member-cell centres, summed
/// over all nets (single-pin nets contribute exactly 0).
double total_hpwl(const NetDb& db, const Placement& pl);

/// Greedy HPWL-improving swap refinement between equal-width cells of the
/// same region, shared by both placement engines. Evaluates each candidate
/// swap incrementally against cached per-net bounding boxes; accept/reject
/// decisions (and therefore the final placement) are bit-identical to
/// recomputing every touched net from scratch. Consumes `rng` exactly as
/// the historical in-placer loop did.
void refine_equal_width_swaps(const NetDb& db,
                              const std::vector<PlacedRegion>& regions,
                              int refine_passes, util::Rng& rng,
                              Placement& pl);

/// True if `net` is distributed as a supply (rail/mesh) rather than routed
/// as a signal wire.
bool is_supply_net(const std::string& net);

}  // namespace vcoadc::synth
