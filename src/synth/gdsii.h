// Binary GDSII stream writer and reader.
//
// Sec. 3.1: "we can export their layouts in GDSII format, merge them with
// the existing standard cell library". This module emits a real GDSII
// stream (record-structured binary: HEADER/BGNLIB/UNITS/BGNSTR/BOUNDARY/
// SREF/ENDSTR/ENDLIB with 8-byte excess-64 reals and big-endian integers)
// for a synthesized Layout: one structure per referenced cell master (its
// abutment box on the outline layer) and one top structure instantiating
// every placed cell via SREF, with floorplan regions as boundaries on a
// regions layer. The reader parses any stream this writer produces (and
// the common subset of foundry streams).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "synth/layout.h"

namespace vcoadc::synth {

/// Layer assignment used by the writer.
struct GdsLayers {
  int cell_outline = 10;
  int region = 20;
  int die = 0;
};

/// Serializes the layout as a binary GDSII stream.
std::vector<std::uint8_t> write_gdsii(const Layout& layout,
                                      const std::string& lib_name,
                                      const GdsLayers& layers = {});

// --- reader-side data model ---

struct GdsBoundary {
  int layer = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> xy;  ///< DB units
};

struct GdsSref {
  std::string structure;
  std::int32_t x = 0, y = 0;  ///< DB units
};

struct GdsStructure {
  std::string name;
  std::vector<GdsBoundary> boundaries;
  std::vector<GdsSref> srefs;
};

struct GdsLibrary {
  std::string name;
  double user_unit = 1e-3;   ///< metres per DB unit * 1e? (UNITS record)
  double meters_per_db = 1e-9;
  std::vector<GdsStructure> structures;

  const GdsStructure* find(const std::string& name) const;
};

struct GdsParseResult {
  bool ok = false;
  std::string error;
  GdsLibrary library;
};

/// Parses a binary GDSII stream.
GdsParseResult read_gdsii(const std::vector<std::uint8_t>& bytes);

}  // namespace vcoadc::synth
