#include "synth/power_grid.h"

#include <algorithm>
#include <cmath>

#include "netlist/generator.h"
#include "util/strings.h"

namespace vcoadc::synth {

std::string power_net_of_domain(const std::string& pd) {
  if (pd == netlist::kPdVdd) return "VDD";
  if (pd == netlist::kPdVrefp) return "VREFP";
  if (pd == netlist::kPdVctrlp) return "VCTRLP";
  if (pd == netlist::kPdVctrln) return "VCTRLN";
  if (pd == netlist::kPdVbuf1 || pd == netlist::kPdVbuf2) return "VBUF";
  // Unknown domains default to the global supply.
  return "VDD";
}

std::vector<const RailSegment*> PowerGrid::rails_at(double y, double x0,
                                                    double x1) const {
  std::vector<const RailSegment*> out;
  for (const RailSegment& r : rails) {
    const double yc = r.rect.y + r.rect.h / 2;
    if (std::fabs(yc - y) > r.rect.h) continue;
    // Strict x overlap: rails of adjacent regions abut exactly at the cut
    // line and must not count as covering a cell across the boundary.
    const double eps = 1e-12;
    if (r.rect.x2() <= x0 + eps || r.rect.x >= x1 - eps) continue;
    out.push_back(&r);
  }
  return out;
}

PowerGrid generate_power_grid(const Floorplan& fp,
                              const PowerGridOptions& opts) {
  PowerGrid grid;
  grid.rail_width_m =
      (opts.rail_width_m > 0) ? opts.rail_width_m : 2.0 * fp.site_width_m;
  grid.rail_sheet_ohms = opts.rail_sheet_ohms;
  const double row_h = fp.row_height_m;

  for (const PlacedRegion& region : fp.regions) {
    if (region.spec.is_group) continue;  // resistor groups: no rails
    const std::string power = power_net_of_domain(region.spec.name);
    // Row boundary lines inside the region, aligned to the die row grid.
    const double y_start =
        fp.die.y +
        std::ceil((region.rect.y - fp.die.y) / row_h - 1e-9) * row_h;
    for (double y = y_start; y <= region.rect.y2() + 1e-12; y += row_h) {
      const long line = std::lround((y - fp.die.y) / row_h);
      RailSegment rail;
      rail.net = (line % 2 == 0) ? "VSS" : power;
      rail.region = region.spec.name;
      rail.rect = {region.rect.x, y - grid.rail_width_m / 2, region.rect.w,
                   grid.rail_width_m};
      grid.rails.push_back(std::move(rail));
    }
  }
  return grid;
}

PowerGridCheck check_power_grid(const PowerGrid& grid,
                                const std::vector<netlist::FlatInstance>& flat,
                                const Placement& pl, const Floorplan& fp,
                                double current_per_cell_a) {
  PowerGridCheck check;
  (void)fp;

  // Current tally per rail for the IR-drop estimate.
  std::map<const RailSegment*, double> rail_current;

  for (std::size_t i = 0; i < flat.size(); ++i) {
    const auto& fi = flat[i];
    if (fi.cell->is_resistor) continue;
    ++check.cells_checked;
    const PlacedCell& pc = pl.cells[i];
    const std::string want_power = power_net_of_domain(fi.power_domain);

    bool found_power = false, found_ground = false, wrong = false;
    for (double y : {pc.rect.y, pc.rect.y2()}) {
      for (const RailSegment* r : grid.rails_at(y, pc.rect.x, pc.rect.x2())) {
        if (r->net == "VSS") {
          found_ground = true;
        } else if (r->net == want_power) {
          found_power = true;
          rail_current[r] += current_per_cell_a;
        } else {
          wrong = true;  // a supply rail of another domain under this cell
        }
      }
    }
    if (!found_power || !found_ground) {
      ++check.unconnected_cells;
      if (check.problems.size() < 10) {
        check.problems.push_back(fi.path + ": missing " +
                                 (found_power ? "VSS" : want_power) +
                                 " rail");
      }
    } else if (wrong) {
      ++check.wrong_rail_cells;
      if (check.problems.size() < 10) {
        check.problems.push_back(fi.path + ": foreign supply rail under cell");
      }
    }
  }

  // Distributed IR drop on each rail: I_total * R_rail / 2 for a uniform
  // current distribution fed from one end.
  for (const auto& [rail, current] : rail_current) {
    const double squares = rail->rect.w / std::max(rail->rect.h, 1e-12);
    const double resistance = grid.rail_sheet_ohms * squares;
    const double drop = current * resistance / 2.0;
    if (drop > check.max_ir_drop_v) {
      check.max_ir_drop_v = drop;
      check.worst_rail = rail->net + "@" + rail->region;
    }
  }
  return check;
}

}  // namespace vcoadc::synth
