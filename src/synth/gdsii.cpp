#include "synth/gdsii.h"

#include <array>
#include <cmath>
#include <cstring>
#include <set>

#include "util/strings.h"

namespace vcoadc::synth {
namespace {

// GDSII record types (high byte) + data types (low byte).
enum Rec : std::uint16_t {
  kHeader = 0x0002,
  kBgnLib = 0x0102,
  kLibName = 0x0206,
  kUnits = 0x0305,
  kEndLib = 0x0400,
  kBgnStr = 0x0502,
  kStrName = 0x0606,
  kEndStr = 0x0700,
  kBoundary = 0x0800,
  kSref = 0x0A00,
  kLayer = 0x0D02,
  kDatatype = 0x0E02,
  kXy = 0x1003,
  kEndEl = 0x1100,
  kSname = 0x1206,
};

/// Database unit: 1 nm.
constexpr double kMetersPerDb = 1e-9;
constexpr double kUserPerDb = 1e-3;  // user unit = um

class Writer {
 public:
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

  void record(std::uint16_t rec, const std::vector<std::uint8_t>& payload) {
    const std::size_t len = 4 + payload.size();
    push16(static_cast<std::uint16_t>(len));
    push16(rec);
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  }

  void record16(std::uint16_t rec, std::vector<std::int16_t> vals) {
    std::vector<std::uint8_t> p;
    for (std::int16_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(rec, p);
  }

  void record32(std::uint16_t rec, const std::vector<std::int32_t>& vals) {
    std::vector<std::uint8_t> p;
    for (std::int32_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(rec, p);
  }

  void record_string(std::uint16_t rec, std::string s) {
    if (s.size() % 2) s.push_back('\0');  // even-length padding
    record(rec, std::vector<std::uint8_t>(s.begin(), s.end()));
  }

  void record_reals(std::uint16_t rec, const std::vector<double>& vals) {
    std::vector<std::uint8_t> p;
    for (double v : vals) {
      const auto r = to_real8(v);
      p.insert(p.end(), r.begin(), r.end());
    }
    record(rec, p);
  }

 private:
  void push16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  /// GDSII 8-byte excess-64 base-16 real.
  static std::array<std::uint8_t, 8> to_real8(double v) {
    std::array<std::uint8_t, 8> out{};
    if (v == 0.0) return out;
    std::uint8_t sign = 0;
    if (v < 0) {
      sign = 0x80;
      v = -v;
    }
    int exp16 = 0;
    while (v >= 1.0) {
      v /= 16.0;
      ++exp16;
    }
    while (v < 1.0 / 16.0) {
      v *= 16.0;
      --exp16;
    }
    out[0] = static_cast<std::uint8_t>(sign | ((exp16 + 64) & 0x7f));
    for (int i = 1; i < 8; ++i) {
      v *= 256.0;
      const auto byte = static_cast<std::uint8_t>(v);
      out[static_cast<std::size_t>(i)] = byte;
      v -= byte;
    }
    return out;
  }

  std::vector<std::uint8_t> bytes_;
};

std::int32_t to_db(double meters) {
  return static_cast<std::int32_t>(std::llround(meters / kMetersPerDb));
}

void write_box(Writer& w, int layer, double x, double y, double bw,
               double bh) {
  w.record(kBoundary, {});
  w.record16(kLayer, {static_cast<std::int16_t>(layer)});
  w.record16(kDatatype, {0});
  const std::int32_t x0 = to_db(x), y0 = to_db(y);
  const std::int32_t x1 = to_db(x + bw), y1 = to_db(y + bh);
  w.record32(kXy, {x0, y0, x1, y0, x1, y1, x0, y1, x0, y0});
  w.record(kEndEl, {});
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool next(std::uint16_t* rec, std::vector<std::uint8_t>* payload) {
    if (pos_ + 4 > bytes_.size()) return false;
    const std::uint16_t len =
        static_cast<std::uint16_t>((bytes_[pos_] << 8) | bytes_[pos_ + 1]);
    *rec = static_cast<std::uint16_t>((bytes_[pos_ + 2] << 8) |
                                      bytes_[pos_ + 3]);
    if (len < 4 || pos_ + len > bytes_.size()) return false;
    payload->assign(bytes_.begin() + static_cast<long>(pos_ + 4),
                    bytes_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ >= bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

std::int16_t read16(const std::vector<std::uint8_t>& p, std::size_t off) {
  return static_cast<std::int16_t>((p[off] << 8) | p[off + 1]);
}

std::int32_t read32(const std::vector<std::uint8_t>& p, std::size_t off) {
  return static_cast<std::int32_t>((p[off] << 24) | (p[off + 1] << 16) |
                                   (p[off + 2] << 8) | p[off + 3]);
}

double read_real8(const std::vector<std::uint8_t>& p, std::size_t off) {
  const std::uint8_t first = p[off];
  const bool neg = (first & 0x80) != 0;
  const int exp16 = (first & 0x7f) - 64;
  double mantissa = 0;
  double scale = 1.0 / 256.0;
  for (int i = 1; i < 8; ++i) {
    mantissa += p[off + static_cast<std::size_t>(i)] * scale;
    scale /= 256.0;
  }
  double v = mantissa * std::pow(16.0, exp16);
  return neg ? -v : v;
}

std::string read_string(const std::vector<std::uint8_t>& p) {
  std::string s(p.begin(), p.end());
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

}  // namespace

std::vector<std::uint8_t> write_gdsii(const Layout& layout,
                                      const std::string& lib_name,
                                      const GdsLayers& layers) {
  Writer w;
  w.record16(kHeader, {600});  // stream version 6
  // BGNLIB: 12 int16 timestamps (fixed epoch for reproducibility).
  w.record16(kBgnLib, std::vector<std::int16_t>(12, 0));
  w.record_string(kLibName, lib_name);
  w.record_reals(kUnits, {kUserPerDb, kMetersPerDb});

  // One structure per referenced master.
  std::set<const netlist::StdCell*> masters;
  for (const auto& fi : layout.flat()) masters.insert(fi.cell);
  for (const netlist::StdCell* cell : masters) {
    w.record16(kBgnStr, std::vector<std::int16_t>(12, 0));
    w.record_string(kStrName, cell->name);
    write_box(w, layers.cell_outline, 0, 0, cell->width_m, cell->height_m);
    w.record(kEndStr, {});
  }

  // Top structure: die + regions + cell placements.
  w.record16(kBgnStr, std::vector<std::int16_t>(12, 0));
  w.record_string(kStrName, "TOP");
  const Floorplan& fp = layout.floorplan();
  write_box(w, layers.die, fp.die.x, fp.die.y, fp.die.w, fp.die.h);
  for (const PlacedRegion& r : fp.regions) {
    write_box(w, layers.region, r.rect.x, r.rect.y, r.rect.w, r.rect.h);
  }
  for (std::size_t i = 0; i < layout.flat().size(); ++i) {
    const PlacedCell& pc = layout.placement().cells[i];
    w.record(kSref, {});
    w.record_string(kSname, layout.flat()[i].cell->name);
    w.record32(kXy, {to_db(pc.rect.x), to_db(pc.rect.y)});
    w.record(kEndEl, {});
  }
  w.record(kEndStr, {});
  w.record(kEndLib, {});
  return w.take();
}

const GdsStructure* GdsLibrary::find(const std::string& name) const {
  for (const GdsStructure& s : structures) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

GdsParseResult read_gdsii(const std::vector<std::uint8_t>& bytes) {
  GdsParseResult res;
  Reader reader(bytes);
  std::uint16_t rec = 0;
  std::vector<std::uint8_t> payload;

  GdsStructure* cur_struct = nullptr;
  GdsBoundary pending_boundary;
  GdsSref pending_sref;
  enum class Element { kNone, kBoundary, kSref } element = Element::kNone;
  bool saw_header = false, saw_endlib = false;

  while (reader.next(&rec, &payload)) {
    switch (rec) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        res.library.name = read_string(payload);
        break;
      case kUnits:
        if (payload.size() >= 16) {
          res.library.user_unit = read_real8(payload, 0);
          res.library.meters_per_db = read_real8(payload, 8);
        }
        break;
      case kBgnStr:
        res.library.structures.emplace_back();
        cur_struct = &res.library.structures.back();
        break;
      case kStrName:
        if (cur_struct != nullptr) cur_struct->name = read_string(payload);
        break;
      case kEndStr:
        cur_struct = nullptr;
        break;
      case kBoundary:
        element = Element::kBoundary;
        pending_boundary = GdsBoundary{};
        break;
      case kSref:
        element = Element::kSref;
        pending_sref = GdsSref{};
        break;
      case kLayer:
        if (element == Element::kBoundary && payload.size() >= 2) {
          pending_boundary.layer = read16(payload, 0);
        }
        break;
      case kSname:
        if (element == Element::kSref) {
          pending_sref.structure = read_string(payload);
        }
        break;
      case kXy:
        if (element == Element::kBoundary) {
          for (std::size_t off = 0; off + 8 <= payload.size(); off += 8) {
            pending_boundary.xy.emplace_back(read32(payload, off),
                                             read32(payload, off + 4));
          }
        } else if (element == Element::kSref && payload.size() >= 8) {
          pending_sref.x = read32(payload, 0);
          pending_sref.y = read32(payload, 4);
        }
        break;
      case kEndEl:
        if (cur_struct != nullptr) {
          if (element == Element::kBoundary) {
            cur_struct->boundaries.push_back(pending_boundary);
          } else if (element == Element::kSref) {
            cur_struct->srefs.push_back(pending_sref);
          }
        }
        element = Element::kNone;
        break;
      case kEndLib:
        saw_endlib = true;
        break;
      default:
        break;  // records we don't model (TEXT, PATH, ...) are skipped
    }
  }
  if (!saw_header) {
    res.error = "missing HEADER record";
    return res;
  }
  if (!saw_endlib) {
    res.error = "missing ENDLIB record (truncated stream?)";
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace vcoadc::synth
