#include "synth/synthesis_flow.h"

#include <algorithm>
#include <utility>

#include "synth/placer_quadratic.h"
#include "util/trace.h"

namespace vcoadc::synth {

namespace {

/// Splits a Design::validate() message ("module/inst: reason") into the
/// offending item and the reason.
FlowDiagnostic validate_diagnostic(const std::string& msg) {
  FlowDiagnostic d;
  d.stage = "validate";
  const auto colon = msg.find(": ");
  if (colon != std::string::npos) {
    d.item = msg.substr(0, colon);
    d.reason = msg.substr(colon + 2);
  } else {
    d.reason = msg;
  }
  return d;
}

}  // namespace

SynthesisResult SynthesisResult::clone() const {
  SynthesisResult copy;
  copy.floorplan_spec = floorplan_spec;
  if (layout) copy.layout = std::make_unique<Layout>(*layout);
  copy.routing = routing;
  copy.detailed_routing = detailed_routing;
  copy.drc = drc;
  copy.stats = stats;
  copy.diagnostics = diagnostics;
  copy.owner = owner;
  return copy;
}

FloorplanStageResult run_floorplan_stage(const netlist::Design& design,
                                         const SynthesisOptions& opts,
                                         std::vector<FlowDiagnostic>& diags) {
  util::TraceSpan span(opts.trace, "floorplan");
  FloorplanStageResult art;

  const auto problems = design.validate();
  if (!problems.empty()) {
    for (const auto& p : problems) diags.push_back(validate_diagnostic(p));
    span.note("validate failed: " + std::to_string(problems.size()) +
              " problem(s)");
    return art;
  }

  art.flat = design.flatten();
  const auto regions = partition_into_regions(art.flat);

  FloorplanOptions fopts;
  fopts.target_utilization = opts.target_utilization;
  fopts.aspect_ratio = opts.aspect_ratio;
  fopts.row_height_m = design.library().row_height_m();
  // Site width: reconstruct the M1 pitch from the smallest inverter (3
  // sites wide by construction in make_standard_library).
  double min_width = 1e9;
  for (const auto& c : design.library().cells()) {
    if (c.function == "inv") min_width = std::min(min_width, c.width_m);
  }
  fopts.site_width_m = (min_width < 1e9)
                           ? min_width / 3.0
                           : design.library().row_height_m() / 9.0;

  art.fp = make_floorplan(regions, fopts);
  art.floorplan_spec = write_floorplan_spec(art.fp);
  span.note(std::to_string(art.flat.size()) + " cells, " +
            std::to_string(art.fp.regions.size()) + " regions");
  return art;
}

Placement run_placement_stage(const FloorplanStageResult& art,
                              const SynthesisOptions& opts, const NetDb& db) {
  util::TraceSpan span(opts.trace, "placement");
  Placement pl;
  if (opts.placer == PlacerKind::kQuadratic && opts.respect_power_domains) {
    QuadraticPlacerOptions qopts;
    qopts.refine_passes = opts.refine_passes;
    qopts.seed = opts.seed;
    pl = place_quadratic(art.flat, art.fp, qopts, db);
  } else {
    PlacementOptions popts;
    popts.respect_regions = opts.respect_power_domains;
    popts.barycenter_passes = opts.barycenter_passes;
    popts.refine_passes = opts.refine_passes;
    popts.seed = opts.seed;
    pl = place(art.flat, art.fp, popts, db);
  }
  span.note(opts.placer == PlacerKind::kQuadratic ? "quadratic"
                                                  : "serpentine");
  return pl;
}

SynthesisResult run_route_stage(const FloorplanStageResult& art,
                                const Placement& pl,
                                const SynthesisOptions& opts,
                                const NetDb& db) {
  SynthesisResult result;
  result.floorplan_spec = art.floorplan_spec;
  result.owner = art.owner;
  {
    util::TraceSpan span(opts.trace, "route");
    RouterOptions ropts;
    result.routing = estimate_routing(art.flat, pl, art.fp.die, ropts, db);
    if (opts.detailed_route) {
      MazeRouterOptions mopts;
      mopts.threads = opts.threads;
      result.detailed_routing =
          maze_route(art.flat, pl, art.fp.die, mopts, db);
      span.note(std::to_string(result.detailed_routing.nets.size()) +
                " nets, " +
                std::to_string(result.detailed_routing.overflowed_edges) +
                " overflow");
    }
  }
  {
    util::TraceSpan span(opts.trace, "drc");
    // DRC violations are signoff findings, not flow failures: they are
    // reported through the DrcReport, never as diagnostics.
    result.drc = run_drc(art.flat, pl, art.fp);
    span.note(std::to_string(result.drc.violations.size()) + " violations");
  }
  result.layout = std::make_unique<Layout>(art.flat, art.fp, pl);
  result.stats = result.layout->stats();
  return result;
}

SynthesisResult synthesize(const netlist::Design& design,
                           const SynthesisOptions& opts) {
  util::TraceSpan span(opts.trace, "synthesis");
  std::vector<FlowDiagnostic> diags;
  FloorplanStageResult art = run_floorplan_stage(design, opts, diags);
  if (!diags.empty()) {
    SynthesisResult result;
    result.diagnostics = std::move(diags);
    span.note("failed in " + result.diagnostics.front().stage);
    return result;
  }
  // One interned net database feeds every downstream stage (placement,
  // routing estimate, detailed routing) instead of each stage rebuilding
  // its own string-keyed net maps.
  const NetDb netdb(art.flat);
  const Placement pl = run_placement_stage(art, opts, netdb);
  return run_route_stage(art, pl, opts, netdb);
}

}  // namespace vcoadc::synth
