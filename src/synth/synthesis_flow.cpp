#include "synth/synthesis_flow.h"

#include <cstdio>
#include <cstdlib>

#include "synth/placer_quadratic.h"

namespace vcoadc::synth {

SynthesisResult synthesize(const netlist::Design& design,
                           const SynthesisOptions& opts) {
  const auto problems = design.validate();
  if (!problems.empty()) {
    std::fprintf(stderr, "synthesize: design '%s' does not validate:\n",
                 design.top().c_str());
    for (const auto& p : problems) std::fprintf(stderr, "  %s\n", p.c_str());
    std::abort();
  }

  auto flat = design.flatten();
  // One interned net database feeds every downstream stage (placement,
  // routing estimate, detailed routing) instead of each stage rebuilding
  // its own string-keyed net maps.
  const NetDb netdb(flat);
  const auto regions = partition_into_regions(flat);

  FloorplanOptions fopts;
  fopts.target_utilization = opts.target_utilization;
  fopts.aspect_ratio = opts.aspect_ratio;
  fopts.row_height_m = design.library().row_height_m();
  // Site width: reconstruct the M1 pitch from the smallest inverter (3
  // sites wide by construction in make_standard_library).
  double min_width = 1e9;
  for (const auto& c : design.library().cells()) {
    if (c.function == "inv") min_width = std::min(min_width, c.width_m);
  }
  fopts.site_width_m = (min_width < 1e9) ? min_width / 3.0
                                         : design.library().row_height_m() / 9.0;

  SynthesisResult result;
  Floorplan fp = make_floorplan(regions, fopts);
  result.floorplan_spec = write_floorplan_spec(fp);

  Placement pl;
  if (opts.placer == PlacerKind::kQuadratic && opts.respect_power_domains) {
    QuadraticPlacerOptions qopts;
    qopts.refine_passes = opts.refine_passes;
    qopts.seed = opts.seed;
    pl = place_quadratic(flat, fp, qopts, netdb);
  } else {
    PlacementOptions popts;
    popts.respect_regions = opts.respect_power_domains;
    popts.barycenter_passes = opts.barycenter_passes;
    popts.refine_passes = opts.refine_passes;
    popts.seed = opts.seed;
    pl = place(flat, fp, popts, netdb);
  }

  RouterOptions ropts;
  result.routing = estimate_routing(flat, pl, fp.die, ropts, netdb);
  if (opts.detailed_route) {
    MazeRouterOptions mopts;
    mopts.threads = opts.route_threads;
    result.detailed_routing = maze_route(flat, pl, fp.die, mopts, netdb);
  }
  result.drc = run_drc(flat, pl, fp);
  result.layout =
      std::make_unique<Layout>(std::move(flat), std::move(fp), std::move(pl));
  result.stats = result.layout->stats();
  return result;
}

}  // namespace vcoadc::synth
