#include "synth/net_db.h"

#include <algorithm>

namespace vcoadc::synth {

NetDb::NetDb(const std::vector<netlist::FlatInstance>& flat) {
  num_cells_ = static_cast<int>(flat.size());

  // Collect every signal-net name once, then sort: the dense id of a net is
  // its rank in lexicographic order (see header for why that matters).
  for (const auto& fi : flat) {
    for (const auto& [pin, net] : fi.conn) {
      (void)pin;
      if (netlist::is_supply_net(net)) continue;
      if (id_.emplace(net, 0).second) names_.push_back(net);
    }
  }
  std::sort(names_.begin(), names_.end());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    id_[names_[i]] = static_cast<int>(i);
  }
  const std::size_t n_nets = names_.size();
  const std::size_t n_cells = flat.size();

  // Counting pass for the three CSR structures.
  conn_count_.assign(n_nets, 0);
  std::vector<std::size_t> member_cnt(n_nets, 0);
  cell_pin_off_.assign(n_cells + 1, 0);
  cell_net_off_.assign(n_cells + 1, 0);
  for (std::size_t c = 0; c < n_cells; ++c) {
    for (const auto& [pin, net] : flat[c].conn) {
      (void)pin;
      const auto it = id_.find(net);
      if (it == id_.end()) continue;
      ++conn_count_[static_cast<std::size_t>(it->second)];
      ++cell_pin_off_[c + 1];
    }
  }

  // Fill the per-cell pin list (connection order) and, from it, the per-cell
  // unique net list and per-net member counts.
  for (std::size_t c = 0; c < n_cells; ++c) {
    cell_pin_off_[c + 1] += cell_pin_off_[c];
  }
  cell_pins_.resize(cell_pin_off_[n_cells]);
  std::vector<int> scratch;
  for (std::size_t c = 0; c < n_cells; ++c) {
    std::size_t w = cell_pin_off_[c];
    scratch.clear();
    for (const auto& [pin, net] : flat[c].conn) {
      const auto it = id_.find(net);
      if (it == id_.end()) continue;
      cell_pins_[w++] = CellPin{it->second, &pin};
      scratch.push_back(it->second);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    cell_net_off_[c + 1] = cell_net_off_[c] + scratch.size();
    for (int net : scratch) {
      cell_nets_.push_back(net);
      ++member_cnt[static_cast<std::size_t>(net)];
    }
  }

  // Per-net unique members: cells are visited in ascending index, so each
  // net's member list comes out sorted without a final sort.
  member_off_.assign(n_nets + 1, 0);
  for (std::size_t n = 0; n < n_nets; ++n) {
    member_off_[n + 1] = member_off_[n] + member_cnt[n];
  }
  members_.resize(member_off_[n_nets]);
  std::vector<std::size_t> write_pos(member_off_.begin(),
                                     member_off_.end() - 1);
  for (std::size_t c = 0; c < n_cells; ++c) {
    for (int net : nets_of(static_cast<int>(c))) {
      members_[write_pos[static_cast<std::size_t>(net)]++] =
          static_cast<int>(c);
    }
  }
}

int NetDb::id_of(const std::string& net_name) const {
  const auto it = id_.find(net_name);
  return it == id_.end() ? -1 : it->second;
}

}  // namespace vcoadc::synth
