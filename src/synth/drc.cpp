#include "synth/drc.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace vcoadc::synth {

std::string to_string(DrcKind kind) {
  switch (kind) {
    case DrcKind::kOverlap:
      return "cell-overlap";
    case DrcKind::kOutsideDie:
      return "outside-die";
    case DrcKind::kOutsideRegion:
      return "outside-region";
    case DrcKind::kOffRowGrid:
      return "off-row-grid";
    case DrcKind::kPowerRailShort:
      return "power-rail-short";
    case DrcKind::kRegionOverlap:
      return "region-overlap";
  }
  return "?";
}

int DrcReport::count(DrcKind kind) const {
  int n = 0;
  for (const auto& v : violations) n += (v.kind == kind);
  return n;
}

DrcReport run_drc(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl, const Floorplan& fp) {
  DrcReport rep;
  auto add = [&](DrcKind kind, std::string detail) {
    rep.violations.push_back({kind, std::move(detail)});
  };

  // Region disjointness.
  for (std::size_t i = 0; i < fp.regions.size(); ++i) {
    for (std::size_t j = i + 1; j < fp.regions.size(); ++j) {
      if (fp.regions[i].rect.overlaps(fp.regions[j].rect)) {
        add(DrcKind::kRegionOverlap,
            fp.regions[i].spec.name + " overlaps " + fp.regions[j].spec.name);
      }
    }
  }

  // Per-cell geometric checks + row bucketing. Cells that sit off the row
  // grid are reported once and *excluded* from the row-overlap pass:
  // rounding a mis-gridded cell into an arbitrary row would fabricate (or
  // mask) overlap and rail-short pairs against cells it does not abut.
  struct RowEntry {
    int row;
    int idx;
  };
  std::vector<RowEntry> row_cells;
  row_cells.reserve(pl.cells.size());
  for (std::size_t i = 0; i < pl.cells.size(); ++i) {
    const PlacedCell& pc = pl.cells[i];
    const auto& fi = flat[i];
    if (!fp.die.contains(pc.rect)) {
      add(DrcKind::kOutsideDie, fi.path + " at " + pc.rect.to_string());
    }
    // Region containment against the *assigned* power domain's region (if a
    // region with that name exists in the floorplan).
    const std::string want =
        fi.cell->is_resistor ? fi.group : fi.power_domain;
    if (const PlacedRegion* r = fp.find(want)) {
      if (!r->rect.contains(pc.rect)) {
        add(DrcKind::kOutsideRegion,
            fi.path + " (" + want + ") at " + pc.rect.to_string());
      }
    }
    const double row_pos = (pc.rect.y - fp.die.y) / fp.row_height_m;
    if (std::fabs(row_pos - std::round(row_pos)) > 1e-6) {
      add(DrcKind::kOffRowGrid, fi.path);
      continue;
    }
    row_cells.push_back({static_cast<int>(std::lround(row_pos)),
                         static_cast<int>(i)});
  }

  // Overlaps + rail shorts, per row: one (row, x) sort replaces the old
  // string-free but allocation-heavy map-of-vectors bucketing.
  std::sort(row_cells.begin(), row_cells.end(),
            [&](const RowEntry& a, const RowEntry& b) {
              if (a.row != b.row) return a.row < b.row;
              const double xa = pl.cells[static_cast<std::size_t>(a.idx)].rect.x;
              const double xb = pl.cells[static_cast<std::size_t>(b.idx)].rect.x;
              if (xa != xb) return xa < xb;
              return a.idx < b.idx;
            });
  for (std::size_t k = 1; k < row_cells.size(); ++k) {
    if (row_cells[k].row == row_cells[k - 1].row) {
      const int row = row_cells[k].row;
      const int a = row_cells[k - 1].idx;
      const int b = row_cells[k].idx;
      const PlacedCell& ca = pl.cells[static_cast<std::size_t>(a)];
      const PlacedCell& cb = pl.cells[static_cast<std::size_t>(b)];
      if (ca.rect.overlaps(cb.rect)) {
        add(DrcKind::kOverlap,
            flat[static_cast<std::size_t>(a)].path + " / " +
                flat[static_cast<std::size_t>(b)].path);
      }
      // Rail short: two cells on the same row whose supply pins resolve to
      // different P/G nets, with no region boundary between them. A region
      // boundary breaks the rail, so only flag pairs in the same region.
      const auto& fa = flat[static_cast<std::size_t>(a)];
      const auto& fb = flat[static_cast<std::size_t>(b)];
      if (ca.region != cb.region) continue;
      const std::string pda = fa.cell->is_resistor ? "" : fa.power_domain;
      const std::string pdb = fb.cell->is_resistor ? "" : fb.power_domain;
      if (!pda.empty() && !pdb.empty() && pda != pdb) {
        add(DrcKind::kPowerRailShort,
            fa.path + " (" + pda + ") abuts " + fb.path + " (" + pdb +
                ") on row " + std::to_string(row));
      }
    }
  }
  return rep;
}

}  // namespace vcoadc::synth
