#include "synth/drc.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace vcoadc::synth {

std::string to_string(DrcKind kind) {
  switch (kind) {
    case DrcKind::kOverlap:
      return "cell-overlap";
    case DrcKind::kOutsideDie:
      return "outside-die";
    case DrcKind::kOutsideRegion:
      return "outside-region";
    case DrcKind::kOffRowGrid:
      return "off-row-grid";
    case DrcKind::kPowerRailShort:
      return "power-rail-short";
    case DrcKind::kRegionOverlap:
      return "region-overlap";
  }
  return "?";
}

int DrcReport::count(DrcKind kind) const {
  int n = 0;
  for (const auto& v : violations) n += (v.kind == kind);
  return n;
}

DrcReport run_drc(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl, const Floorplan& fp) {
  DrcReport rep;
  auto add = [&](DrcKind kind, std::string detail) {
    rep.violations.push_back({kind, std::move(detail)});
  };

  // Region disjointness.
  for (std::size_t i = 0; i < fp.regions.size(); ++i) {
    for (std::size_t j = i + 1; j < fp.regions.size(); ++j) {
      if (fp.regions[i].rect.overlaps(fp.regions[j].rect)) {
        add(DrcKind::kRegionOverlap,
            fp.regions[i].spec.name + " overlaps " + fp.regions[j].spec.name);
      }
    }
  }

  // Per-cell geometric checks + row bucketing.
  std::map<int, std::vector<int>> by_row;  // row index -> flat indices
  for (std::size_t i = 0; i < pl.cells.size(); ++i) {
    const PlacedCell& pc = pl.cells[i];
    const auto& fi = flat[i];
    if (!fp.die.contains(pc.rect)) {
      add(DrcKind::kOutsideDie, fi.path + " at " + pc.rect.to_string());
    }
    // Region containment against the *assigned* power domain's region (if a
    // region with that name exists in the floorplan).
    const std::string want =
        fi.cell->is_resistor ? fi.group : fi.power_domain;
    if (const PlacedRegion* r = fp.find(want)) {
      if (!r->rect.contains(pc.rect)) {
        add(DrcKind::kOutsideRegion,
            fi.path + " (" + want + ") at " + pc.rect.to_string());
      }
    }
    const double row_pos = (pc.rect.y - fp.die.y) / fp.row_height_m;
    if (std::fabs(row_pos - std::round(row_pos)) > 1e-6) {
      add(DrcKind::kOffRowGrid, fi.path);
    }
    by_row[static_cast<int>(std::lround(row_pos))].push_back(
        static_cast<int>(i));
  }

  // Overlaps + rail shorts, per row.
  for (auto& [row, members] : by_row) {
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return pl.cells[static_cast<std::size_t>(a)].rect.x <
             pl.cells[static_cast<std::size_t>(b)].rect.x;
    });
    for (std::size_t k = 1; k < members.size(); ++k) {
      const int a = members[k - 1];
      const int b = members[k];
      const PlacedCell& ca = pl.cells[static_cast<std::size_t>(a)];
      const PlacedCell& cb = pl.cells[static_cast<std::size_t>(b)];
      if (ca.rect.overlaps(cb.rect)) {
        add(DrcKind::kOverlap,
            flat[static_cast<std::size_t>(a)].path + " / " +
                flat[static_cast<std::size_t>(b)].path);
      }
      // Rail short: two cells on the same row whose supply pins resolve to
      // different P/G nets, with no region boundary between them. A region
      // boundary breaks the rail, so only flag pairs in the same region.
      const auto& fa = flat[static_cast<std::size_t>(a)];
      const auto& fb = flat[static_cast<std::size_t>(b)];
      if (ca.region != cb.region) continue;
      const std::string pda = fa.cell->is_resistor ? "" : fa.power_domain;
      const std::string pdb = fb.cell->is_resistor ? "" : fb.power_domain;
      if (!pda.empty() && !pdb.empty() && pda != pdb) {
        add(DrcKind::kPowerRailShort,
            fa.path + " (" + pda + ") abuts " + fb.path + " (" + pdb +
                ") on row " + std::to_string(row));
      }
    }
  }
  return rep;
}

}  // namespace vcoadc::synth
