// Netlist-free core of the grid-based detailed router.
//
// The routing model is unchanged from the original maze router: two metal
// layers (layer 0 horizontal, layer 1 vertical, vias between), per-edge
// track capacities, negotiated congestion (history costs + rip-up and
// reroute). What lives here is the fast path:
//
//   * windowed A* search with an admissible Manhattan + via-lower-bound
//     heuristic instead of full-grid Dijkstra;
//   * epoch-stamped dist/prev/tree scratch arrays reused across searches
//     (no O(grid) allocation or clearing per pin);
//   * Prim-style multi-pin decomposition (always connect the pin nearest to
//     the *growing tree* next);
//   * rip-up batches whose search windows are pairwise disjoint routed in
//     parallel on a util::ThreadPool — disjoint windows cannot share a grid
//     edge or node, so the parallel result is bit-identical to serial.
//
// This header is independent of the netlist layer so the parallel-router
// tests (including the TSan variant) can drive it with synthetic nets; the
// netlist-facing entry point is maze_router.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/geometry.h"

namespace vcoadc::synth {

struct GridPoint {
  int x = 0;
  int y = 0;
  int layer = 0;  ///< 0 = horizontal metal, 1 = vertical metal

  bool operator==(const GridPoint& o) const {
    return x == o.x && y == o.y && layer == o.layer;
  }
  bool operator<(const GridPoint& o) const {
    if (x != o.x) return x < o.x;
    if (y != o.y) return y < o.y;
    return layer < o.layer;
  }
};

struct RoutedNet {
  std::string name;
  int pins = 0;
  std::vector<std::vector<GridPoint>> paths;  ///< one per 2-pin segment
  double wirelength_m = 0;
  int vias = 0;
  bool routed = false;
};

struct MazeRouteResult {
  std::vector<RoutedNet> nets;
  double total_wirelength_m = 0;
  int total_vias = 0;
  int failed_nets = 0;
  int overflowed_edges = 0;  ///< edges above capacity after the final pass
  int grid_x = 0, grid_y = 0;
};

struct MazeRouterOptions {
  /// Routing-grid pitch [m]; 0 = one track row per cell row height.
  double grid_pitch_m = 0;
  /// Tracks per grid edge. A cell row spans ~9 M1 pitches; one is the
  /// rail, leaving ~8 signal tracks per row-pitch grid edge.
  int edge_capacity = 8;
  double via_cost = 3.0;   ///< in units of one grid step
  /// Guaranteed rip-up & reroute rounds. The loop exits as soon as the
  /// grid is overflow-free, and keeps negotiating past this bound only
  /// while the overflow count still strictly shrinks.
  int max_iterations = 8;
  /// Worker threads for rip-up batches. 0 = run inline on the calling
  /// thread; any value produces bit-identical routing (batches only group
  /// nets whose search windows are disjoint).
  int threads = 0;
  /// A* search-window margin around a net's pin bounding box, in grid
  /// cells. Failed searches escalate (double the margin, up to the whole
  /// grid) before a net is declared unroutable.
  int window_margin = 8;
};

/// One net to route: deduplicated layer-0 pin locations plus the pin-bbox
/// half-perimeter used for net ordering.
struct NetPins {
  std::string name;
  std::vector<GridPoint> pins;
  double hpwl = 0;
};

/// The routing grid: geometry plus per-edge usage and history cost.
/// Horizontal edges live on layer 0, vertical edges on layer 1.
struct RouteGrid {
  int nx = 0, ny = 0;
  double pitch = 0;
  Rect die;

  std::vector<int> h_use;  // (nx-1) * ny
  std::vector<int> v_use;  // nx * (ny-1)
  std::vector<double> h_hist;
  std::vector<double> v_hist;

  RouteGrid() = default;
  /// Builds an empty grid covering `die` at `pitch` (>= 2x2 nodes).
  RouteGrid(const Rect& die_rect, double pitch_m);

  int h_idx(int x, int y) const { return y * (nx - 1) + x; }
  int v_idx(int x, int y) const { return y * nx + x; }

  int num_nodes() const { return nx * ny * 2; }
  int node_id(const GridPoint& p) const {
    return (p.layer * ny + p.y) * nx + p.x;
  }
  GridPoint from_id(int id) const {
    GridPoint p;
    p.x = id % nx;
    p.y = (id / nx) % ny;
    p.layer = id / (nx * ny);
    return p;
  }

  GridPoint snap(double mx, double my) const;
};

/// Cost of crossing one routing edge given usage/capacity and history.
/// Always >= 1 (one grid step), which is what makes the A* heuristic's
/// Manhattan term admissible.
inline double route_edge_cost(int use, double hist, int cap,
                              double pressure) {
  double c = 1.0 + hist;
  if (use >= cap) c += pressure * static_cast<double>(use - cap + 1);
  return c;
}

/// Per-thread search scratch: dist/prev arrays validated by an epoch stamp
/// (so a new search is O(touched) instead of O(grid) to reset), the current
/// net's route tree as an epoch-stamped mask + node list, and the reusable
/// A* heap storage.
struct SearchScratch {
  std::vector<double> dist;
  std::vector<int> prev;
  std::vector<std::uint32_t> stamp;      ///< dist/prev valid iff == epoch
  std::vector<std::uint32_t> tree_mark;  ///< in tree iff == tree_epoch
  std::uint32_t epoch = 0;
  std::uint32_t tree_epoch = 0;
  std::vector<int> tree_nodes;                 ///< current tree, add order
  std::vector<std::pair<double, int>> heap;    ///< A* open list storage

  /// Ensures capacity for `n_nodes`; keeps stamps valid when shrinking.
  void bind(int n_nodes);
  void new_tree();
  bool in_tree(int id) const {
    return tree_mark[static_cast<std::size_t>(id)] == tree_epoch;
  }
  void add_tree(int id) {
    if (!in_tree(id)) {
      tree_mark[static_cast<std::size_t>(id)] = tree_epoch;
      tree_nodes.push_back(id);
    }
  }
};

/// Inclusive node-coordinate search window.
struct RouteWindow {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool disjoint(const RouteWindow& o) const {
    return x1 < o.x0 || o.x1 < x0 || y1 < o.y0 || o.y1 < y0;
  }
};

/// Window spanning a net's pins plus `margin` cells, clamped to the grid.
RouteWindow window_of(const RouteGrid& g, const std::vector<GridPoint>& pins,
                      int margin);

/// A* from the scratch's current tree (multi-source) to `target` (either
/// layer), restricted to `win`. Returns the path in source..target order,
/// or empty when unreachable inside the window.
std::vector<GridPoint> astar_search(const RouteGrid& g, SearchScratch& s,
                                    const GridPoint& target, double via_cost,
                                    int cap, double pressure,
                                    const RouteWindow& win);

/// Routes all segments of one net inside `win` (escalating the window on
/// failure when `allow_escalate`); commits usage for routed segments.
/// Returns false when any segment failed (partial paths stay committed,
/// exactly like the historical router, so rip-up accounting balances).
bool route_net(RouteGrid& g, SearchScratch& s, const NetPins& net,
               RoutedNet& out, const MazeRouterOptions& opts,
               double pressure, RouteWindow win, bool allow_escalate);

/// Full negotiated-congestion routing of `nets` on `g`: initial serial pass
/// in (hpwl, name) order, then rip-up-and-reroute iterations whose batches
/// run on `opts.threads` workers. Output is independent of `opts.threads`.
MazeRouteResult route_nets(RouteGrid& g, std::vector<NetPins> nets,
                           const MazeRouterOptions& opts);

}  // namespace vcoadc::synth
