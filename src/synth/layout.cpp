#include "synth/layout.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace vcoadc::synth {

Layout::Layout(std::vector<netlist::FlatInstance> flat, Floorplan fp,
               Placement pl)
    : flat_(std::move(flat)), fp_(std::move(fp)), pl_(std::move(pl)) {}

LayoutStats Layout::stats() const {
  LayoutStats s;
  s.die_area_m2 = fp_.die.area();
  std::set<int> rows;
  for (std::size_t i = 0; i < pl_.cells.size(); ++i) {
    s.cell_area_m2 += flat_[i].cell->area_m2();
    rows.insert(pl_.cells[i].row);
    ++s.num_cells;
  }
  s.utilization = (s.die_area_m2 > 0) ? s.cell_area_m2 / s.die_area_m2 : 0;
  s.num_rows = static_cast<int>(rows.size());
  s.num_regions = static_cast<int>(fp_.regions.size());
  return s;
}

std::string Layout::write_gds_text(const std::string& design_name) const {
  std::ostringstream os;
  auto um = [](double m) { return m * 1e6; };
  os << "HEADER vcoadc-gds-text 1\n";
  os << "BGNSTR " << design_name << "\n";
  os << "  BOUNDARY die 0 0 " << um(fp_.die.w) << " " << um(fp_.die.h)
     << "\n";
  for (const PlacedRegion& r : fp_.regions) {
    os << "  REGION " << r.spec.name << " " << um(r.rect.x) << " "
       << um(r.rect.y) << " " << um(r.rect.w) << " " << um(r.rect.h) << "\n";
  }
  for (std::size_t i = 0; i < pl_.cells.size(); ++i) {
    const PlacedCell& pc = pl_.cells[i];
    os << "  SREF " << flat_[i].cell->name << " " << flat_[i].path << " "
       << um(pc.rect.x) << " " << um(pc.rect.y) << "\n";
  }
  os << "ENDSTR\n";
  return os.str();
}

std::string Layout::render_ascii(int width) const {
  width = std::max(width, 20);
  const double scale = fp_.die.w / width;
  const int height =
      std::max(6, static_cast<int>(std::lround(fp_.die.h / scale / 2.2)));
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), '.'));

  // Assign a letter per region, draw its area, then overlay the label.
  std::ostringstream legend;
  char symbol = 'A';
  for (const PlacedRegion& r : fp_.regions) {
    const int x0 = std::clamp(
        static_cast<int>(r.rect.x / fp_.die.w * width), 0, width - 1);
    const int x1 = std::clamp(
        static_cast<int>(r.rect.x2() / fp_.die.w * width) - 1, 0, width - 1);
    const int y0 = std::clamp(
        static_cast<int>((1.0 - r.rect.y2() / fp_.die.h) * height), 0,
        height - 1);
    const int y1 = std::clamp(
        static_cast<int>((1.0 - r.rect.y / fp_.die.h) * height) - 1, 0,
        height - 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = symbol;
      }
    }
    legend << "  " << symbol << " = " << r.spec.name << " ("
           << r.spec.members.size() << " cells)\n";
    ++symbol;
    if (symbol > 'Z') symbol = 'a';
  }

  std::ostringstream os;
  os << "+" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  for (const std::string& line : grid) os << "|" << line << "|\n";
  os << "+" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  os << util::format("die: %.1f um x %.1f um (%.4f mm^2)\n", fp_.die.w * 1e6,
                     fp_.die.h * 1e6, fp_.die.area() * 1e12);
  os << legend.str();
  return os.str();
}

}  // namespace vcoadc::synth
