// Power-grid generation and verification.
//
// The reason the whole Sec. 3.3 floorplan machinery exists: each power
// domain's region gets its own P/G rail pairs (standard-cell rows share a
// ground rail below and the domain's power rail above, alternating), so
// VCTRLP inverters are fed from the VCTRLP rail and never short to VDD.
//
// generate_power_grid builds the rail geometry for a floorplan;
// check_power_grid verifies every placed cell's supply pins land on rails
// of the right nets (running it on a PD-oblivious placement reproduces the
// "P/G rails ... short their P/G pins" failure physically), and estimates
// the worst rail IR drop from per-cell current draw.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/floorplan.h"
#include "synth/placer.h"

namespace vcoadc::synth {

/// Power net a domain's cells draw from ("PD_VCTRLP" -> "VCTRLP", ...).
std::string power_net_of_domain(const std::string& pd);

struct RailSegment {
  std::string net;    ///< e.g. "VSS", "VDD", "VCTRLP"
  std::string region; ///< owning region name
  Rect rect;          ///< rail geometry (width = rail_width)
};

struct PowerGridOptions {
  double rail_width_m = 0;       ///< 0 = 2 x site width
  double rail_sheet_ohms = 0.05; ///< metal sheet resistance [ohm/sq]
};

struct PowerGrid {
  std::vector<RailSegment> rails;
  double rail_width_m = 0;
  double rail_sheet_ohms = 0.05;

  /// Rails overlapping a horizontal span on a given y line.
  std::vector<const RailSegment*> rails_at(double y, double x0,
                                           double x1) const;
};

/// Generates alternating VSS / domain-power rails on the row grid of every
/// power-domain region (component groups get no rails - resistors have no
/// supply pins).
PowerGrid generate_power_grid(const Floorplan& fp,
                              const PowerGridOptions& opts = {});

struct PowerGridCheck {
  int cells_checked = 0;
  int unconnected_cells = 0;   ///< no rail at the cell's row boundary
  int wrong_rail_cells = 0;    ///< rail present but wrong power net
  double max_ir_drop_v = 0;    ///< worst distributed rail drop
  std::string worst_rail;      ///< "<net>@<region>" of the worst drop
  std::vector<std::string> problems;  ///< first few, human-readable
  bool clean() const {
    return unconnected_cells == 0 && wrong_rail_cells == 0;
  }
};

/// Verifies supply connectivity of every non-resistor cell and computes
/// IR drop with `current_per_cell_a` drawn uniformly by each cell.
PowerGridCheck check_power_grid(const PowerGrid& grid,
                                const std::vector<netlist::FlatInstance>& flat,
                                const Placement& pl, const Floorplan& fp,
                                double current_per_cell_a = 10e-6);

}  // namespace vcoadc::synth
