// The end-to-end layout-synthesis flow of Fig. 9, as explicit stages:
//
//   HDL generation          -> done upstream (netlist::build_adc_design or
//                              the Verilog parser)
//   std-cell lib modification -> done upstream (add_resistor_cells)
//   floorplan generation    -> run_floorplan_stage (flatten + partition +
//                              make_floorplan)
//   automatic place & route -> run_placement_stage + run_route_stage
//   resulting layout        -> SynthesisResult (Layout + DRC signoff)
//
// The three stage functions are public so the core stage graph
// (core/flow.h) can content-hash and cache each artifact independently —
// e.g. one cached placement feeds both a routed run and a route-less
// estimate. synthesize() sequences all three; it is the single-call form
// the examples and benches use.
//
// Failure handling: a design that fails structural validation no longer
// aborts the process — the result carries structured FlowDiagnostics
// (stage, offending cell/net, reason) and a null layout, and ok() is
// false. Generator output always validates; the diagnostics path exists
// for parsed/hand-edited netlists.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/drc.h"
#include "synth/layout.h"
#include "synth/maze_router.h"
#include "synth/router.h"

namespace vcoadc::util {
class Trace;
}

namespace vcoadc::synth {

/// Placement engine selection.
enum class PlacerKind {
  kSerpentine,  ///< connectivity-ordered row packing (placer.cpp)
  kQuadratic,   ///< analytical quadratic placement (placer_quadratic.cpp)
};

struct SynthesisOptions {
  PlacerKind placer = PlacerKind::kSerpentine;
  /// Mixed-signal placement density. AMS layouts place far sparser than
  /// digital blocks (supply straps, decap fill, isolation spacing); the
  /// paper floorplans "such that the placement density is similar in both
  /// technology nodes", which is this knob.
  double target_utilization = 0.08;
  double aspect_ratio = 1.0;
  bool respect_power_domains = true;  ///< false = the naive prior flow
  int barycenter_passes = 6;
  int refine_passes = 3;
  /// Run the maze router after placement (per-net detailed routes, vias,
  /// overflow check) in addition to the HPWL/congestion estimate.
  bool detailed_route = true;
  /// Worker threads for the router's rip-up batches; 0 runs inline. The
  /// stage graph overwrites this with core::ExecContext::threads — set it
  /// only when calling synth::synthesize() directly. Any value yields
  /// bit-identical routing (see route_grid.h).
  int threads = 0;
  std::uint64_t seed = 1;
  /// Per-stage event sink (floorplan/placement/route/drc spans); null =
  /// no tracing. Never part of a cache key — tracing must not change
  /// results.
  util::Trace* trace = nullptr;
};

/// One structured failure from a flow stage: which stage rejected the
/// design, the offending cell/net/instance (when attributable) and why.
struct FlowDiagnostic {
  std::string stage;   ///< e.g. "validate", "floorplan", "route"
  std::string item;    ///< offending cell/net/instance path; may be empty
  std::string reason;
};

struct SynthesisResult {
  std::string floorplan_spec;     ///< the .fp-style text (Fig. 9 input)
  std::unique_ptr<Layout> layout; ///< placed design; null when !ok()
  RoutingEstimate routing;
  MazeRouteResult detailed_routing;  ///< empty when detailed_route is off
  DrcReport drc;
  LayoutStats stats;
  /// Structured stage failures; empty on a clean run.
  std::vector<FlowDiagnostic> diagnostics;
  /// Keeps whatever owns the StdCells that the layout's flat instances
  /// point into alive (propagated from FloorplanStageResult::owner). The
  /// stage graph caches and evicts stage artifacts independently, so this
  /// result must not rely on the upstream netlist artifact's residency.
  std::shared_ptr<const void> owner;

  bool ok() const { return diagnostics.empty(); }

  /// Deep copy (the layout pointer is cloned). Lets callers that hold a
  /// shared cached result hand out an owned copy.
  SynthesisResult clone() const;
};

/// Floorplan-stage artifact: the flattened leaf instances plus the
/// regioned die they floorplan into. `flat` index order is the order every
/// downstream stage (placement, routing, DRC) refers to.
struct FloorplanStageResult {
  std::vector<netlist::FlatInstance> flat;
  Floorplan fp;
  std::string floorplan_spec;
  /// Shared ownership of the library (and design) the `flat` entries'
  /// StdCell pointers reference. run_floorplan_stage leaves it null (the
  /// caller's design outlives the call); the stage graph fills it so a
  /// cached artifact stays valid after the upstream netlist artifact is
  /// evicted or the building Flow returns.
  std::shared_ptr<const void> owner;
};

/// Validates + flattens + partitions + floorplans. On validation failure
/// appends diagnostics and returns an empty artifact (flat empty).
FloorplanStageResult run_floorplan_stage(const netlist::Design& design,
                                         const SynthesisOptions& opts,
                                         std::vector<FlowDiagnostic>& diags);

/// Places the floorplanned design (serpentine or quadratic per options).
Placement run_placement_stage(const FloorplanStageResult& art,
                              const SynthesisOptions& opts, const NetDb& db);

/// Routing estimate + optional detailed maze route + DRC, assembled into
/// the final result (copies the floorplan artifact and placement into the
/// owned Layout).
SynthesisResult run_route_stage(const FloorplanStageResult& art,
                                const Placement& pl,
                                const SynthesisOptions& opts,
                                const NetDb& db);

/// Runs floorplan + placement + routing + DRC. A design that fails
/// validation yields a result with diagnostics and a null layout instead
/// of aborting; check ok() when the input is not generator-produced.
SynthesisResult synthesize(const netlist::Design& design,
                           const SynthesisOptions& opts);

}  // namespace vcoadc::synth
