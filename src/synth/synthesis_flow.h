// The end-to-end layout-synthesis flow of Fig. 9:
//
//   HDL generation          -> done upstream (netlist::build_adc_design or
//                              the Verilog parser)
//   std-cell lib modification -> done upstream (add_resistor_cells)
//   floorplan generation    -> partition_into_regions + make_floorplan
//   automatic place & route -> place + estimate_routing
//   resulting layout        -> Layout (+ DRC signoff)
//
// SynthesisFlow bundles those stages with one options struct and returns
// every intermediate artifact, which is what the benches and examples print.
#pragma once

#include <memory>
#include <string>

#include "netlist/netlist.h"
#include "synth/drc.h"
#include "synth/layout.h"
#include "synth/maze_router.h"
#include "synth/router.h"

namespace vcoadc::synth {

/// Placement engine selection.
enum class PlacerKind {
  kSerpentine,  ///< connectivity-ordered row packing (placer.cpp)
  kQuadratic,   ///< analytical quadratic placement (placer_quadratic.cpp)
};

struct SynthesisOptions {
  PlacerKind placer = PlacerKind::kSerpentine;
  /// Mixed-signal placement density. AMS layouts place far sparser than
  /// digital blocks (supply straps, decap fill, isolation spacing); the
  /// paper floorplans "such that the placement density is similar in both
  /// technology nodes", which is this knob.
  double target_utilization = 0.08;
  double aspect_ratio = 1.0;
  bool respect_power_domains = true;  ///< false = the naive prior flow
  int barycenter_passes = 6;
  int refine_passes = 3;
  /// Run the maze router after placement (per-net detailed routes, vias,
  /// overflow check) in addition to the HPWL/congestion estimate.
  bool detailed_route = true;
  /// Worker threads for the router's rip-up-and-reroute batches; 0 runs
  /// inline. Any value yields bit-identical routing (see route_grid.h).
  int route_threads = 0;
  std::uint64_t seed = 1;
};

struct SynthesisResult {
  std::string floorplan_spec;     ///< the .fp-style text (Fig. 9 input)
  std::unique_ptr<Layout> layout; ///< placed design
  RoutingEstimate routing;
  MazeRouteResult detailed_routing;  ///< empty when detailed_route is off
  DrcReport drc;
  LayoutStats stats;
};

/// Runs floorplan + placement + routing estimate + DRC on a validated
/// design. Aborts if the design does not validate (programming error —
/// generator output and parsed paper netlists always validate).
SynthesisResult synthesize(const netlist::Design& design,
                           const SynthesisOptions& opts);

}  // namespace vcoadc::synth
