// Quadratic (force-directed) global placement with region-aware
// legalization - the analytical-placement counterpart to the serpentine
// packer in placer.cpp, and the style of engine the paper's citation [13]
// (hierarchical/analytical placement for analog circuits) builds on.
//
// Model: every signal net becomes a star of quadratic springs; every cell
// is weakly anchored to its power-domain region's centre so the solution
// stays region-local. The two axes decouple, each solved by Jacobi
// iterations on the graph Laplacian. Legalization then snaps cells into
// their region's rows preserving the global ordering.
#pragma once

#include "synth/floorplan.h"
#include "synth/placer.h"

namespace vcoadc::synth {

struct QuadraticPlacerOptions {
  int solver_iterations = 60;
  /// Anchor weight pulling each cell to its region centre, relative to the
  /// average net weight. Keeps disconnected cells placed and bounds drift.
  double anchor_weight = 0.05;
  /// Post-legalization HPWL swap refinement passes (reuses the detailed
  /// placer's refinement machinery semantics).
  int refine_passes = 2;
  std::uint64_t seed = 1;
};

/// Places every flat instance with quadratic global placement followed by
/// row legalization inside the floorplan regions.
Placement place_quadratic(const std::vector<netlist::FlatInstance>& flat,
                          const Floorplan& fp,
                          const QuadraticPlacerOptions& opts = {});

/// As above, with a prebuilt net database over the same `flat` vector.
Placement place_quadratic(const std::vector<netlist::FlatInstance>& flat,
                          const Floorplan& fp,
                          const QuadraticPlacerOptions& opts,
                          const NetDb& db);

}  // namespace vcoadc::synth
