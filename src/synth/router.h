// Global-routing estimation: per-net half-perimeter wirelength, a tile-based
// congestion map, and the wire capacitance feeding the power model. A full
// track router is out of scope for the flow's claims; congestion + HPWL is
// what APR signoff reads at this stage.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/placer.h"

namespace vcoadc::synth {

struct NetRoute {
  std::string net;
  int pins = 0;
  double hpwl_m = 0;
  /// Steiner-corrected length estimate: HPWL * sqrt(pins/4) for pins > 3
  /// (the usual RSMT upscaling for multi-pin nets).
  double est_length_m = 0;
};

struct CongestionMap {
  int nx = 0, ny = 0;
  std::vector<double> demand;  ///< nets whose bbox crosses each tile
  double max_demand = 0;
  double mean_demand = 0;

  double at(int x, int y) const {
    return demand[static_cast<std::size_t>(y * nx + x)];
  }
};

struct RoutingEstimate {
  std::vector<NetRoute> nets;
  double total_hpwl_m = 0;
  double total_est_length_m = 0;
  CongestionMap congestion;
  /// Estimated total signal-wire capacitance, given cap per metre.
  double wire_cap_f = 0;
};

struct RouterOptions {
  int grid_x = 16;
  int grid_y = 16;
  /// Wire capacitance per metre (typ. ~0.15 fF/um = 1.5e-10 F/m).
  double cap_per_m = 1.5e-10;
};

RoutingEstimate estimate_routing(const std::vector<netlist::FlatInstance>& flat,
                                 const Placement& pl, const Rect& die,
                                 const RouterOptions& opts);

/// As above, with a prebuilt net database over the same `flat` vector.
RoutingEstimate estimate_routing(const std::vector<netlist::FlatInstance>& flat,
                                 const Placement& pl, const Rect& die,
                                 const RouterOptions& opts, const NetDb& db);

}  // namespace vcoadc::synth
