// Grid-based detailed router (Lee/maze search with negotiated congestion).
//
// Completes the APR stage of Fig. 9 beyond the HPWL estimate: every signal
// net is routed on a two-layer grid (layer 0 horizontal, layer 1 vertical,
// vias between) with per-edge track capacities. Multi-pin nets decompose
// into source-to-tree segments; congested edges get history costs and
// overflowing nets are ripped up and rerouted. Outputs per-net paths,
// total routed wirelength (to compare against the HPWL lower bound), via
// counts, and any remaining overflows.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/placer.h"

namespace vcoadc::synth {

struct GridPoint {
  int x = 0;
  int y = 0;
  int layer = 0;  ///< 0 = horizontal metal, 1 = vertical metal

  bool operator==(const GridPoint& o) const {
    return x == o.x && y == o.y && layer == o.layer;
  }
  bool operator<(const GridPoint& o) const {
    if (x != o.x) return x < o.x;
    if (y != o.y) return y < o.y;
    return layer < o.layer;
  }
};

struct RoutedNet {
  std::string name;
  int pins = 0;
  std::vector<std::vector<GridPoint>> paths;  ///< one per 2-pin segment
  double wirelength_m = 0;
  int vias = 0;
  bool routed = false;
};

struct MazeRouteResult {
  std::vector<RoutedNet> nets;
  double total_wirelength_m = 0;
  int total_vias = 0;
  int failed_nets = 0;
  int overflowed_edges = 0;  ///< edges above capacity after the final pass
  int grid_x = 0, grid_y = 0;
};

struct MazeRouterOptions {
  /// Routing-grid pitch [m]; 0 = one track row per cell row height.
  double grid_pitch_m = 0;
  /// Tracks per grid edge. A cell row spans ~9 M1 pitches; one is the
  /// rail, leaving ~8 signal tracks per row-pitch grid edge.
  int edge_capacity = 8;
  double via_cost = 3.0;   ///< in units of one grid step
  int max_iterations = 4;  ///< rip-up & reroute rounds
};

/// Routes all multi-pin signal nets of a placed design.
MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts = {});

}  // namespace vcoadc::synth
