// Grid-based detailed router (maze search with negotiated congestion).
//
// Completes the APR stage of Fig. 9 beyond the HPWL estimate: every signal
// net is routed on a two-layer grid (layer 0 horizontal, layer 1 vertical,
// vias between) with per-edge track capacities. Multi-pin nets decompose
// into source-to-tree segments; congested edges get history costs and
// overflowing nets are ripped up and rerouted. Outputs per-net paths,
// total routed wirelength (to compare against the HPWL lower bound), via
// counts, and any remaining overflows.
//
// This is the netlist-facing entry point: it interns the flat netlist's
// signal nets (via NetDb), snaps pin locations to the grid and hands the
// per-net pin sets to the netlist-free core in route_grid.h (windowed A*,
// epoch-stamped scratch, parallel rip-up batches).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/net_db.h"
#include "synth/placer.h"
#include "synth/route_grid.h"

namespace vcoadc::synth {

/// Routes all multi-pin signal nets of a placed design.
MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts = {});

/// As above, with a prebuilt net database over the same `flat` vector.
MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts, const NetDb& db);

}  // namespace vcoadc::synth
