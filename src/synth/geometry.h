// Plane geometry primitives for the layout engine. All coordinates are in
// metres (layout-space), consistent with the TechNode geometry fields.
#pragma once

#include <algorithm>
#include <string>

namespace vcoadc::synth {

struct Point {
  double x = 0;
  double y = 0;
};

struct Rect {
  double x = 0;  ///< lower-left corner
  double y = 0;
  double w = 0;
  double h = 0;

  double x2() const { return x + w; }
  double y2() const { return y + h; }
  double area() const { return w * h; }
  Point center() const { return {x + w / 2, y + h / 2}; }

  bool contains(const Rect& other, double eps = 1e-12) const;
  bool overlaps(const Rect& other, double eps = 1e-12) const;
  Rect intersect(const Rect& other) const;

  std::string to_string() const;
};

/// Bounding box accumulator for HPWL computation.
struct BBox {
  double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  bool empty = true;

  void expand(Point p);
  double half_perimeter() const;
};

}  // namespace vcoadc::synth
