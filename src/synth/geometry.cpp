#include "synth/geometry.h"

#include <cstdio>

namespace vcoadc::synth {

bool Rect::contains(const Rect& other, double eps) const {
  return other.x >= x - eps && other.y >= y - eps &&
         other.x2() <= x2() + eps && other.y2() <= y2() + eps;
}

bool Rect::overlaps(const Rect& other, double eps) const {
  return other.x < x2() - eps && x < other.x2() - eps &&
         other.y < y2() - eps && y < other.y2() - eps;
}

Rect Rect::intersect(const Rect& other) const {
  const double nx = std::max(x, other.x);
  const double ny = std::max(y, other.y);
  const double nx2 = std::min(x2(), other.x2());
  const double ny2 = std::min(y2(), other.y2());
  if (nx2 <= nx || ny2 <= ny) return {};
  return {nx, ny, nx2 - nx, ny2 - ny};
}

std::string Rect::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "(%.3g, %.3g, %.3g x %.3g)", x, y, w, h);
  return buf;
}

void BBox::expand(Point p) {
  if (empty) {
    xmin = xmax = p.x;
    ymin = ymax = p.y;
    empty = false;
    return;
  }
  xmin = std::min(xmin, p.x);
  xmax = std::max(xmax, p.x);
  ymin = std::min(ymin, p.y);
  ymax = std::max(ymax, p.y);
}

double BBox::half_perimeter() const {
  if (empty) return 0;
  return (xmax - xmin) + (ymax - ymin);
}

}  // namespace vcoadc::synth
