// Static timing analysis over the gate-level netlist.
//
// Answers the Sec. 2.2 boundary question - "easy adaptations to different
// specifications as long as they are within the ADC performance boundary
// in a given process": the feedback loop (comparator decision -> XOR ->
// DAC drive) must settle within one clock period, so the netlist's
// critical combinational delay bounds the usable fs at each node, and that
// bound scales with FO4 - the timing face of the scaling-compatibility
// claim.
//
// The ADC netlist is full of intentional combinational loops (the two
// rings, the cross-coupled comparator pairs, the SR latches). The analyzer
// finds strongly connected components, cuts their internal arcs (reporting
// how many loops were cut), and runs longest-path on the remaining DAG
// with a linear delay model: intrinsic delay from the Liberty view plus a
// fanout/wire-load-dependent term.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/placer.h"
#include "tech/tech_node.h"

namespace vcoadc::synth {

struct TimingPathStep {
  std::string through_gate;  ///< instance path
  std::string to_net;
  double arc_delay_s = 0;
  double arrival_s = 0;
};

struct TimingReport {
  double critical_delay_s = 0;
  std::vector<TimingPathStep> critical_path;
  double clock_period_s = 0;
  double slack_s = 0;         ///< period - critical delay
  double max_clock_hz = 0;    ///< 1 / critical delay
  int loops_cut = 0;          ///< SCCs of size > 1 (rings, latches)
  int num_gates = 0;
  int num_arcs = 0;
};

struct TimingOptions {
  double clock_period_s = 1.0 / 750e6;
  /// Wire capacitance per metre for the load model.
  double cap_per_m = 1.5e-10;
  /// Placement for wire-length-based loads; nullptr = fanout-only loads.
  const Placement* placement = nullptr;
};

/// Analyzes the flattened design. Supply nets are not timing nodes.
TimingReport analyze_timing(const netlist::Design& design,
                            const tech::TechNode& node,
                            const TimingOptions& opts);

}  // namespace vcoadc::synth
