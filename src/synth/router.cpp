#include "synth/router.h"

#include <algorithm>
#include <cmath>

#include "synth/net_db.h"

namespace vcoadc::synth {

RoutingEstimate estimate_routing(const std::vector<netlist::FlatInstance>& flat,
                                 const Placement& pl, const Rect& die,
                                 const RouterOptions& opts) {
  const NetDb db(flat);
  return estimate_routing(flat, pl, die, opts, db);
}

RoutingEstimate estimate_routing(const std::vector<netlist::FlatInstance>& flat,
                                 const Placement& pl, const Rect& die,
                                 const RouterOptions& opts, const NetDb& db) {
  (void)flat;  // net topology comes interned through `db`
  RoutingEstimate est;
  est.congestion.nx = opts.grid_x;
  est.congestion.ny = opts.grid_y;
  est.congestion.demand.assign(
      static_cast<std::size_t>(opts.grid_x * opts.grid_y), 0.0);

  const double tile_w = die.w / opts.grid_x;
  const double tile_h = die.h / opts.grid_y;

  // Net ids ascend in name order, matching the historical string-map
  // iteration, so est.nets comes out in the same order as before.
  for (int n = 0; n < db.num_nets(); ++n) {
    const int pins = db.connection_count(n);
    if (pins < 2) continue;
    BBox bb;
    for (int c : db.members(n)) {
      bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
    }
    NetRoute nr;
    nr.net = db.name(n);
    nr.pins = pins;
    nr.hpwl_m = bb.half_perimeter();
    nr.est_length_m =
        (pins <= 3) ? nr.hpwl_m
                    : nr.hpwl_m * std::sqrt(static_cast<double>(pins) / 4.0);
    est.total_hpwl_m += nr.hpwl_m;
    est.total_est_length_m += nr.est_length_m;

    // Spread one unit of demand over the tiles the net's bbox covers.
    int x0 = static_cast<int>((bb.xmin - die.x) / tile_w);
    int x1 = static_cast<int>((bb.xmax - die.x) / tile_w);
    int y0 = static_cast<int>((bb.ymin - die.y) / tile_h);
    int y1 = static_cast<int>((bb.ymax - die.y) / tile_h);
    x0 = std::clamp(x0, 0, opts.grid_x - 1);
    x1 = std::clamp(x1, 0, opts.grid_x - 1);
    y0 = std::clamp(y0, 0, opts.grid_y - 1);
    y1 = std::clamp(y1, 0, opts.grid_y - 1);
    const double tiles =
        static_cast<double>((x1 - x0 + 1) * (y1 - y0 + 1));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        est.congestion.demand[static_cast<std::size_t>(y * opts.grid_x + x)] +=
            1.0 / tiles * static_cast<double>(pins);
      }
    }
    est.nets.push_back(std::move(nr));
  }

  for (double d : est.congestion.demand) {
    est.congestion.max_demand = std::max(est.congestion.max_demand, d);
    est.congestion.mean_demand += d;
  }
  if (!est.congestion.demand.empty()) {
    est.congestion.mean_demand /=
        static_cast<double>(est.congestion.demand.size());
  }
  est.wire_cap_f = est.total_est_length_m * opts.cap_per_m;
  return est;
}

}  // namespace vcoadc::synth
