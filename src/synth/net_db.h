// Integer-interned net database shared by every layout-synthesis stage.
//
// The placer, routers, STA and the routing estimator all need the same view
// of the flattened netlist: which cells each signal net touches and which
// signal nets each cell touches. Before NetDb each stage rebuilt that view
// with its own `std::map<std::string, ...>` and paid a string compare per
// hot-loop lookup; NetDb interns every signal net name into a dense integer
// id once and exposes CSR (offset + flat array) views, so the hot loops are
// pure integer indexing.
//
// Id contract: ids are assigned in *lexicographic net-name order*. Every
// pre-NetDb stage iterated a name-keyed `std::map`, so iterating nets in
// ascending id order reproduces the exact historical visit order — which is
// what keeps NetDb-based results bit-identical to the string-map era
// (summation order, tie-breaks, RNG consumption all depend on it).
//
// NetDb borrows `flat`: the flat instance vector must outlive the database
// (pin-name pointers alias the instances' connection maps).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace vcoadc::synth {

class NetDb {
 public:
  /// Lightweight view over a CSR slice.
  template <typename T>
  struct Span {
    const T* first = nullptr;
    const T* last = nullptr;
    const T* begin() const { return first; }
    const T* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
    bool empty() const { return first == last; }
    const T& operator[](std::size_t i) const { return first[i]; }
  };

  /// One signal-pin connection of a cell, in the cell's pin-name-sorted
  /// connection order. `pin` aliases the FlatInstance's connection map key.
  struct CellPin {
    int net = -1;
    const std::string* pin = nullptr;
  };

  NetDb() = default;
  explicit NetDb(const std::vector<netlist::FlatInstance>& flat);

  int num_nets() const { return static_cast<int>(names_.size()); }
  int num_cells() const { return num_cells_; }

  /// Net name for an id (ids are dense, name-sorted).
  const std::string& name(int net) const {
    return names_[static_cast<std::size_t>(net)];
  }

  /// Dense id for a signal-net name; -1 for unknown or supply-class nets.
  int id_of(const std::string& net_name) const;

  /// Pin connections on `net`, counted with multiplicity (two pins of the
  /// same cell on one net count twice) — the router estimator's pin count.
  int connection_count(int net) const {
    return conn_count_[static_cast<std::size_t>(net)];
  }

  /// Unique member cells of `net` (flat indices, ascending).
  Span<int> members(int net) const {
    const auto n = static_cast<std::size_t>(net);
    return {members_.data() + member_off_[n],
            members_.data() + member_off_[n + 1]};
  }

  /// Unique signal nets touching `cell` (ascending id = name order).
  Span<int> nets_of(int cell) const {
    const auto c = static_cast<std::size_t>(cell);
    return {cell_nets_.data() + cell_net_off_[c],
            cell_nets_.data() + cell_net_off_[c + 1]};
  }

  /// Signal-pin connections of `cell` in connection-map (pin-name) order.
  Span<CellPin> cell_pins(int cell) const {
    const auto c = static_cast<std::size_t>(cell);
    return {cell_pins_.data() + cell_pin_off_[c],
            cell_pins_.data() + cell_pin_off_[c + 1]};
  }

 private:
  int num_cells_ = 0;
  std::vector<std::string> names_;                // id -> name
  std::unordered_map<std::string, int> id_;       // name -> id
  std::vector<int> conn_count_;                   // id -> pin connections

  // CSR: net id -> unique member cells.
  std::vector<std::size_t> member_off_;
  std::vector<int> members_;

  // CSR: cell -> unique net ids.
  std::vector<std::size_t> cell_net_off_;
  std::vector<int> cell_nets_;

  // CSR: cell -> signal pins in connection order.
  std::vector<std::size_t> cell_pin_off_;
  std::vector<CellPin> cell_pins_;
};

}  // namespace vcoadc::synth
