#include "synth/maze_router.h"

#include <algorithm>

namespace vcoadc::synth {

MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts) {
  const NetDb db(flat);
  return maze_route(flat, pl, die, opts, db);
}

MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts, const NetDb& db) {
  double pitch = opts.grid_pitch_m;
  if (pitch <= 0) {
    // Default: one grid row per cell row.
    double row_h = 1e-6;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      if (!flat[i].cell->is_resistor) {
        row_h = flat[i].cell->height_m;
        break;
      }
    }
    pitch = row_h;
  }
  RouteGrid g(die, pitch);

  // Collect signal nets with snapped, deduplicated pins. Net ids ascend in
  // name order, so the net list matches the historical string-map order.
  std::vector<NetPins> nets;
  nets.reserve(static_cast<std::size_t>(db.num_nets()));
  std::vector<GridPoint> pins;
  for (int n = 0; n < db.num_nets(); ++n) {
    pins.clear();
    for (int c : db.members(n)) {
      const Point ctr = pl.cells[static_cast<std::size_t>(c)].rect.center();
      pins.push_back(g.snap(ctr.x, ctr.y));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    NetPins np;
    np.name = db.name(n);
    np.pins = pins;
    BBox bb;
    for (const auto& p : pins) {
      bb.expand({static_cast<double>(p.x), static_cast<double>(p.y)});
    }
    np.hpwl = bb.half_perimeter();
    nets.push_back(std::move(np));
  }

  return route_nets(g, std::move(nets), opts);
}

}  // namespace vcoadc::synth
