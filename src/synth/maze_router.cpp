#include "synth/maze_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace vcoadc::synth {
namespace {

struct Grid {
  int nx = 0, ny = 0;
  double pitch = 0;
  Rect die;

  // Edge usage: horizontal edges on layer 0, vertical edges on layer 1.
  std::vector<int> h_use;  // (nx-1) * ny
  std::vector<int> v_use;  // nx * (ny-1)
  std::vector<double> h_hist;
  std::vector<double> v_hist;

  int h_idx(int x, int y) const { return y * (nx - 1) + x; }
  int v_idx(int x, int y) const { return y * nx + x; }

  int node_id(const GridPoint& p) const {
    return (p.layer * ny + p.y) * nx + p.x;
  }
  GridPoint from_id(int id) const {
    GridPoint p;
    p.x = id % nx;
    p.y = (id / nx) % ny;
    p.layer = id / (nx * ny);
    return p;
  }

  GridPoint snap(double mx, double my) const {
    GridPoint p;
    p.x = std::clamp(static_cast<int>((mx - die.x) / pitch), 0, nx - 1);
    p.y = std::clamp(static_cast<int>((my - die.y) / pitch), 0, ny - 1);
    p.layer = 0;
    return p;
  }
};

struct NetPins {
  std::string name;
  std::vector<GridPoint> pins;
  double hpwl = 0;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cost of crossing one routing edge given usage/capacity and history.
double edge_cost(int use, double hist, int cap, double pressure) {
  double c = 1.0 + hist;
  if (use >= cap) c += pressure * static_cast<double>(use - cap + 1);
  return c;
}

/// Dijkstra from the net's current tree (multi-source) to `target`.
/// Returns the path (target..source order reversed to source..target) or
/// empty when unreachable.
std::vector<GridPoint> search(const Grid& g, const std::set<int>& sources,
                              const GridPoint& target, double via_cost,
                              int cap, double pressure) {
  const int n_nodes = g.nx * g.ny * 2;
  std::vector<double> dist(static_cast<std::size_t>(n_nodes), kInf);
  std::vector<int> prev(static_cast<std::size_t>(n_nodes), -1);
  using QE = std::pair<double, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  for (int s : sources) {
    dist[static_cast<std::size_t>(s)] = 0;
    pq.push({0, s});
  }
  const int target_id0 = g.node_id(target);
  GridPoint t1 = target;
  t1.layer = 1;
  const int target_id1 = g.node_id(t1);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == target_id0 || u == target_id1) {
      // Reconstruct.
      std::vector<GridPoint> path;
      for (int cur = u; cur != -1; cur = prev[static_cast<std::size_t>(cur)]) {
        path.push_back(g.from_id(cur));
        if (sources.count(cur)) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    const GridPoint p = g.from_id(u);
    auto relax = [&](const GridPoint& q, double w) {
      const int v = g.node_id(q);
      if (dist[static_cast<std::size_t>(u)] + w <
          dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + w;
        prev[static_cast<std::size_t>(v)] = u;
        pq.push({dist[static_cast<std::size_t>(v)], v});
      }
    };
    if (p.layer == 0) {
      // Horizontal moves.
      if (p.x > 0) {
        relax({p.x - 1, p.y, 0},
              edge_cost(g.h_use[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                        g.h_hist[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                        cap, pressure));
      }
      if (p.x + 1 < g.nx) {
        relax({p.x + 1, p.y, 0},
              edge_cost(g.h_use[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                        g.h_hist[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                        cap, pressure));
      }
      relax({p.x, p.y, 1}, via_cost);
    } else {
      // Vertical moves.
      if (p.y > 0) {
        relax({p.x, p.y - 1, 1},
              edge_cost(g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                        g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                        cap, pressure));
      }
      if (p.y + 1 < g.ny) {
        relax({p.x, p.y + 1, 1},
              edge_cost(g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                        g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                        cap, pressure));
      }
      relax({p.x, p.y, 0}, via_cost);
    }
  }
  return {};
}

/// Applies +/-1 usage along a path.
void adjust_usage(Grid& g, const std::vector<GridPoint>& path, int delta) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GridPoint& a = path[i - 1];
    const GridPoint& b = path[i];
    if (a.layer != b.layer) continue;  // via
    if (a.layer == 0) {
      g.h_use[static_cast<std::size_t>(g.h_idx(std::min(a.x, b.x), a.y))] +=
          delta;
    } else {
      g.v_use[static_cast<std::size_t>(g.v_idx(a.x, std::min(a.y, b.y)))] +=
          delta;
    }
  }
}

/// Routes all segments of one net; returns false when any segment failed.
bool route_net(Grid& g, const NetPins& net, RoutedNet& out, double via_cost,
               int cap, double pressure) {
  out.paths.clear();
  out.wirelength_m = 0;
  out.vias = 0;
  if (net.pins.size() < 2) {
    out.routed = true;
    return true;
  }
  std::set<int> tree;
  tree.insert(g.node_id(net.pins[0]));
  GridPoint p0v = net.pins[0];
  p0v.layer = 1;
  tree.insert(g.node_id(p0v));

  // Connect pins nearest-first to the growing tree.
  std::vector<GridPoint> remaining(net.pins.begin() + 1, net.pins.end());
  std::sort(remaining.begin(), remaining.end(),
            [&](const GridPoint& a, const GridPoint& b) {
              const int da = std::abs(a.x - net.pins[0].x) +
                             std::abs(a.y - net.pins[0].y);
              const int db = std::abs(b.x - net.pins[0].x) +
                             std::abs(b.y - net.pins[0].y);
              return da < db;
            });
  for (const GridPoint& pin : remaining) {
    if (tree.count(g.node_id(pin))) continue;
    auto path = search(g, tree, pin, via_cost, cap, pressure);
    if (path.empty()) {
      out.routed = false;
      return false;
    }
    adjust_usage(g, path, +1);
    for (std::size_t i = 0; i < path.size(); ++i) {
      tree.insert(g.node_id(path[i]));
      if (i > 0) {
        if (path[i].layer != path[i - 1].layer) {
          ++out.vias;
        } else {
          out.wirelength_m += g.pitch;
        }
      }
    }
    out.paths.push_back(std::move(path));
  }
  out.routed = true;
  return true;
}

}  // namespace

MazeRouteResult maze_route(const std::vector<netlist::FlatInstance>& flat,
                           const Placement& pl, const Rect& die,
                           const MazeRouterOptions& opts) {
  MazeRouteResult result;
  Grid g;
  g.die = die;
  g.pitch = opts.grid_pitch_m;
  if (g.pitch <= 0) {
    // Default: one grid row per cell row.
    double row_h = 1e-6;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      if (!flat[i].cell->is_resistor) {
        row_h = flat[i].cell->height_m;
        break;
      }
    }
    g.pitch = row_h;
  }
  g.nx = std::max(2, static_cast<int>(std::ceil(die.w / g.pitch)) + 1);
  g.ny = std::max(2, static_cast<int>(std::ceil(die.h / g.pitch)) + 1);
  g.h_use.assign(static_cast<std::size_t>((g.nx - 1) * g.ny), 0);
  g.v_use.assign(static_cast<std::size_t>(g.nx * (g.ny - 1)), 0);
  g.h_hist.assign(g.h_use.size(), 0.0);
  g.v_hist.assign(g.v_use.size(), 0.0);
  result.grid_x = g.nx;
  result.grid_y = g.ny;

  // Collect signal nets with snapped pins.
  std::map<std::string, std::vector<GridPoint>> pins_by_net;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const Point c = pl.cells[i].rect.center();
    for (const auto& [pin, net] : flat[i].conn) {
      if (netlist::is_supply_net(net)) continue;
      pins_by_net[net].push_back(g.snap(c.x, c.y));
    }
  }
  std::vector<NetPins> nets;
  for (auto& [name, pins] : pins_by_net) {
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    NetPins np;
    np.name = name;
    np.pins = pins;
    BBox bb;
    for (const auto& p : pins) {
      bb.expand({static_cast<double>(p.x), static_cast<double>(p.y)});
    }
    np.hpwl = bb.half_perimeter();
    nets.push_back(std::move(np));
  }
  // Short nets first: they have the fewest detour options.
  std::sort(nets.begin(), nets.end(), [](const NetPins& a, const NetPins& b) {
    if (a.hpwl != b.hpwl) return a.hpwl < b.hpwl;
    return a.name < b.name;
  });

  result.nets.resize(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    result.nets[i].name = nets[i].name;
    result.nets[i].pins = static_cast<int>(nets[i].pins.size());
  }

  double pressure = 4.0;
  for (int iter = 0; iter < std::max(1, opts.max_iterations); ++iter) {
    if (iter == 0) {
      for (std::size_t i = 0; i < nets.size(); ++i) {
        route_net(g, nets[i], result.nets[i], opts.via_cost,
                  opts.edge_capacity, pressure);
      }
    } else {
      // Rip up nets that traverse overflowed edges; bump history costs.
      auto overflowed = [&](const std::vector<GridPoint>& path) {
        for (std::size_t k = 1; k < path.size(); ++k) {
          const GridPoint& a = path[k - 1];
          const GridPoint& b = path[k];
          if (a.layer != b.layer) continue;
          if (a.layer == 0) {
            if (g.h_use[static_cast<std::size_t>(
                    g.h_idx(std::min(a.x, b.x), a.y))] > opts.edge_capacity) {
              return true;
            }
          } else {
            if (g.v_use[static_cast<std::size_t>(
                    g.v_idx(a.x, std::min(a.y, b.y)))] > opts.edge_capacity) {
              return true;
            }
          }
        }
        return false;
      };
      for (std::size_t e = 0; e < g.h_use.size(); ++e) {
        if (g.h_use[e] > opts.edge_capacity) g.h_hist[e] += 2.0;
      }
      for (std::size_t e = 0; e < g.v_use.size(); ++e) {
        if (g.v_use[e] > opts.edge_capacity) g.v_hist[e] += 2.0;
      }
      pressure *= 2.0;
      bool any = false;
      for (std::size_t i = 0; i < nets.size(); ++i) {
        RoutedNet& rn = result.nets[i];
        bool needs = !rn.routed;
        for (const auto& path : rn.paths) {
          if (overflowed(path)) needs = true;
        }
        if (!needs) continue;
        any = true;
        for (const auto& path : rn.paths) adjust_usage(g, path, -1);
        route_net(g, nets[i], rn, opts.via_cost, opts.edge_capacity,
                  pressure);
      }
      if (!any) break;
    }
  }

  for (const RoutedNet& rn : result.nets) {
    result.total_wirelength_m += rn.wirelength_m;
    result.total_vias += rn.vias;
    if (!rn.routed) ++result.failed_nets;
  }
  for (int use : g.h_use) {
    if (use > opts.edge_capacity) ++result.overflowed_edges;
  }
  for (int use : g.v_use) {
    if (use > opts.edge_capacity) ++result.overflowed_edges;
  }
  return result;
}

}  // namespace vcoadc::synth
