// Design-rule / constraint checks on a placed layout.
//
// The decisive check is kPowerRailShort: "In conventional digital APR, the
// P/G rails of the cells in the same placement row will be connected and
// short their P/G pins, which will cause a problem if any two cells in the
// row are connected to different P/G nets" (Sec. 3.3). Running the checker
// on a PD-oblivious placement reproduces exactly that failure; the PD-aware
// flow passes.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/floorplan.h"
#include "synth/placer.h"

namespace vcoadc::synth {

enum class DrcKind {
  kOverlap,         ///< two cells overlap
  kOutsideDie,      ///< cell outside the die outline
  kOutsideRegion,   ///< cell outside its assigned region's rectangle
  kOffRowGrid,      ///< cell y not on the row grid
  kPowerRailShort,  ///< different power domains abut on one rail segment
  kRegionOverlap,   ///< two floorplan regions overlap
};

std::string to_string(DrcKind kind);

struct DrcViolation {
  DrcKind kind;
  std::string detail;  ///< human-readable, includes instance paths
};

struct DrcReport {
  std::vector<DrcViolation> violations;
  bool clean() const { return violations.empty(); }
  int count(DrcKind kind) const;
};

/// Runs all checks. `flat` supplies instance names and power domains;
/// `pl.cells` must be index-aligned with `flat`.
DrcReport run_drc(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl, const Floorplan& fp);

}  // namespace vcoadc::synth
