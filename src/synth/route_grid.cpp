#include "synth/route_grid.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/thread_pool.h"

namespace vcoadc::synth {
namespace {

/// One scratch per worker thread, persisting across route_nets calls so a
/// full reroute allocates nothing in steady state.
SearchScratch& thread_scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

/// Applies +/-1 usage along a path.
void adjust_usage(RouteGrid& g, const std::vector<GridPoint>& path,
                  int delta) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GridPoint& a = path[i - 1];
    const GridPoint& b = path[i];
    if (a.layer != b.layer) continue;  // via
    if (a.layer == 0) {
      g.h_use[static_cast<std::size_t>(g.h_idx(std::min(a.x, b.x), a.y))] +=
          delta;
    } else {
      g.v_use[static_cast<std::size_t>(g.v_idx(a.x, std::min(a.y, b.y)))] +=
          delta;
    }
  }
}

}  // namespace

RouteGrid::RouteGrid(const Rect& die_rect, double pitch_m) {
  die = die_rect;
  pitch = pitch_m;
  nx = std::max(2, static_cast<int>(std::ceil(die.w / pitch)) + 1);
  ny = std::max(2, static_cast<int>(std::ceil(die.h / pitch)) + 1);
  h_use.assign(static_cast<std::size_t>((nx - 1) * ny), 0);
  v_use.assign(static_cast<std::size_t>(nx * (ny - 1)), 0);
  h_hist.assign(h_use.size(), 0.0);
  v_hist.assign(v_use.size(), 0.0);
}

GridPoint RouteGrid::snap(double mx, double my) const {
  GridPoint p;
  p.x = std::clamp(static_cast<int>((mx - die.x) / pitch), 0, nx - 1);
  p.y = std::clamp(static_cast<int>((my - die.y) / pitch), 0, ny - 1);
  p.layer = 0;
  return p;
}

void SearchScratch::bind(int n_nodes) {
  const auto n = static_cast<std::size_t>(n_nodes);
  if (stamp.size() < n) {
    dist.assign(n, 0.0);
    prev.assign(n, -1);
    stamp.assign(n, 0);
    tree_mark.assign(n, 0);
    epoch = 0;
    tree_epoch = 0;
  }
}

void SearchScratch::new_tree() {
  if (++tree_epoch == 0) {  // wrapped: stale marks could alias epoch 0
    std::fill(tree_mark.begin(), tree_mark.end(), 0u);
    tree_epoch = 1;
  }
  tree_nodes.clear();
}

RouteWindow window_of(const RouteGrid& g, const std::vector<GridPoint>& pins,
                      int margin) {
  RouteWindow w;
  w.x0 = g.nx - 1;
  w.y0 = g.ny - 1;
  w.x1 = 0;
  w.y1 = 0;
  for (const GridPoint& p : pins) {
    w.x0 = std::min(w.x0, p.x);
    w.y0 = std::min(w.y0, p.y);
    w.x1 = std::max(w.x1, p.x);
    w.y1 = std::max(w.y1, p.y);
  }
  w.x0 = std::max(0, w.x0 - margin);
  w.y0 = std::max(0, w.y0 - margin);
  w.x1 = std::min(g.nx - 1, w.x1 + margin);
  w.y1 = std::min(g.ny - 1, w.y1 + margin);
  return w;
}

std::vector<GridPoint> astar_search(const RouteGrid& g, SearchScratch& s,
                                    const GridPoint& target, double via_cost,
                                    int cap, double pressure,
                                    const RouteWindow& win) {
  if (++s.epoch == 0) {
    std::fill(s.stamp.begin(), s.stamp.end(), 0u);
    s.epoch = 1;
  }
  const int tx = target.x;
  const int ty = target.y;

  // Admissible (and consistent) lower bound on the remaining cost: every
  // grid step costs >= 1, so the Manhattan distance bounds the wire part;
  // layer direction-locking gives an exact lower bound on vias (both axes
  // pending -> at least one via; one axis pending but the node sits on the
  // wrong layer for it -> at least one via). The target is accepted on
  // either layer, so no via term is charged at dx == dy == 0.
  auto heuristic = [&](int x, int y, int layer) {
    const int dx = std::abs(x - tx);
    const int dy = std::abs(y - ty);
    int vias_lb = 0;
    if (dx > 0 && dy > 0) {
      vias_lb = 1;
    } else if ((dx > 0 && layer == 1) || (dy > 0 && layer == 0)) {
      vias_lb = 1;
    }
    return static_cast<double>(dx + dy) + via_cost * vias_lb;
  };

  using QE = std::pair<double, int>;  // (f = g + h, node id)
  s.heap.clear();
  for (int id : s.tree_nodes) {
    const auto u = static_cast<std::size_t>(id);
    s.dist[u] = 0;
    s.prev[u] = -1;
    s.stamp[u] = s.epoch;
    const GridPoint p = g.from_id(id);
    s.heap.push_back({heuristic(p.x, p.y, p.layer), id});
  }
  std::make_heap(s.heap.begin(), s.heap.end(), std::greater<QE>());

  const int target_id0 = g.node_id({tx, ty, 0});
  GridPoint t1{tx, ty, 1};
  const int target_id1 = g.node_id(t1);

  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<QE>());
    const auto [f, u] = s.heap.back();
    s.heap.pop_back();
    const auto ui = static_cast<std::size_t>(u);
    const GridPoint p = g.from_id(u);
    if (f > s.dist[ui] + heuristic(p.x, p.y, p.layer)) continue;  // stale
    if (u == target_id0 || u == target_id1) {
      std::vector<GridPoint> path;
      for (int cur = u; cur != -1;
           cur = s.prev[static_cast<std::size_t>(cur)]) {
        path.push_back(g.from_id(cur));
        if (s.in_tree(cur)) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto relax = [&](const GridPoint& q, double w) {
      const int v = g.node_id(q);
      const auto vi = static_cast<std::size_t>(v);
      const double nd = s.dist[ui] + w;
      if (s.stamp[vi] != s.epoch || nd < s.dist[vi]) {
        s.dist[vi] = nd;
        s.prev[vi] = u;
        s.stamp[vi] = s.epoch;
        s.heap.push_back({nd + heuristic(q.x, q.y, q.layer), v});
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<QE>());
      }
    };
    if (p.layer == 0) {
      // Horizontal moves.
      if (p.x > win.x0) {
        relax({p.x - 1, p.y, 0},
              route_edge_cost(
                  g.h_use[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                  g.h_hist[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                  cap, pressure));
      }
      if (p.x < win.x1) {
        relax({p.x + 1, p.y, 0},
              route_edge_cost(
                  g.h_use[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                  g.h_hist[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                  cap, pressure));
      }
      relax({p.x, p.y, 1}, via_cost);
    } else {
      // Vertical moves.
      if (p.y > win.y0) {
        relax({p.x, p.y - 1, 1},
              route_edge_cost(
                  g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                  g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                  cap, pressure));
      }
      if (p.y < win.y1) {
        relax({p.x, p.y + 1, 1},
              route_edge_cost(
                  g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                  g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                  cap, pressure));
      }
      relax({p.x, p.y, 0}, via_cost);
    }
  }
  return {};
}

bool route_net(RouteGrid& g, SearchScratch& s, const NetPins& net,
               RoutedNet& out, const MazeRouterOptions& opts,
               double pressure, RouteWindow win, bool allow_escalate) {
  out.paths.clear();
  out.wirelength_m = 0;
  out.vias = 0;
  if (net.pins.size() < 2) {
    out.routed = true;
    return true;
  }
  s.bind(g.num_nodes());
  s.new_tree();
  s.add_tree(g.node_id(net.pins[0]));
  GridPoint p0v = net.pins[0];
  p0v.layer = 1;
  s.add_tree(g.node_id(p0v));

  // Prim-style decomposition: always connect the remaining pin nearest to
  // the *current* tree, updating pin-to-tree distances as the tree grows
  // (ties break toward the lowest pin index, i.e. GridPoint order).
  const std::size_t n_rem = net.pins.size() - 1;
  std::vector<int> dist_to_tree(n_rem);
  std::vector<char> done(n_rem, 0);
  for (std::size_t i = 0; i < n_rem; ++i) {
    dist_to_tree[i] = std::abs(net.pins[i + 1].x - net.pins[0].x) +
                      std::abs(net.pins[i + 1].y - net.pins[0].y);
  }
  for (std::size_t connected = 0; connected < n_rem; ++connected) {
    std::size_t best = n_rem;
    for (std::size_t i = 0; i < n_rem; ++i) {
      if (done[i]) continue;
      if (best == n_rem || dist_to_tree[i] < dist_to_tree[best]) best = i;
    }
    done[best] = 1;
    const GridPoint pin = net.pins[best + 1];
    if (s.in_tree(g.node_id(pin))) continue;

    auto path =
        astar_search(g, s, pin, opts.via_cost, opts.edge_capacity, pressure,
                     win);
    if (path.empty() && allow_escalate) {
      // Grow the window (doubling the extra margin) until it covers the
      // grid; only then is the pin genuinely unreachable.
      int extra = std::max(4, opts.window_margin);
      while (path.empty() &&
             (win.x0 > 0 || win.y0 > 0 || win.x1 < g.nx - 1 ||
              win.y1 < g.ny - 1)) {
        win.x0 = std::max(0, win.x0 - extra);
        win.y0 = std::max(0, win.y0 - extra);
        win.x1 = std::min(g.nx - 1, win.x1 + extra);
        win.y1 = std::min(g.ny - 1, win.y1 + extra);
        extra *= 2;
        path = astar_search(g, s, pin, opts.via_cost, opts.edge_capacity,
                            pressure, win);
      }
    }
    if (path.empty()) {
      out.routed = false;
      return false;
    }
    adjust_usage(g, path, +1);
    for (std::size_t i = 0; i < path.size(); ++i) {
      s.add_tree(g.node_id(path[i]));
      if (i > 0) {
        if (path[i].layer != path[i - 1].layer) {
          ++out.vias;
        } else {
          out.wirelength_m += g.pitch;
        }
      }
      // The tree grew: refresh the remaining pins' distance to it.
      for (std::size_t r = 0; r < n_rem; ++r) {
        if (done[r]) continue;
        const int d = std::abs(net.pins[r + 1].x - path[i].x) +
                      std::abs(net.pins[r + 1].y - path[i].y);
        dist_to_tree[r] = std::min(dist_to_tree[r], d);
      }
    }
    out.paths.push_back(std::move(path));
  }
  out.routed = true;
  return true;
}

MazeRouteResult route_nets(RouteGrid& g, std::vector<NetPins> nets,
                           const MazeRouterOptions& opts) {
  MazeRouteResult result;
  result.grid_x = g.nx;
  result.grid_y = g.ny;

  // Short nets first: they have the fewest detour options.
  std::sort(nets.begin(), nets.end(), [](const NetPins& a, const NetPins& b) {
    if (a.hpwl != b.hpwl) return a.hpwl < b.hpwl;
    return a.name < b.name;
  });

  result.nets.resize(nets.size());
  std::vector<RouteWindow> wins(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    result.nets[i].name = nets[i].name;
    result.nets[i].pins = static_cast<int>(nets[i].pins.size());
    wins[i] = window_of(g, nets[i].pins, opts.window_margin);
  }

  util::ThreadPool pool(
      static_cast<std::size_t>(std::max(0, opts.threads)));

  auto overflowed = [&](const std::vector<GridPoint>& path) {
    for (std::size_t k = 1; k < path.size(); ++k) {
      const GridPoint& a = path[k - 1];
      const GridPoint& b = path[k];
      if (a.layer != b.layer) continue;
      if (a.layer == 0) {
        if (g.h_use[static_cast<std::size_t>(g.h_idx(std::min(a.x, b.x),
                                                     a.y))] >
            opts.edge_capacity) {
          return true;
        }
      } else {
        if (g.v_use[static_cast<std::size_t>(g.v_idx(a.x,
                                                     std::min(a.y, b.y)))] >
            opts.edge_capacity) {
          return true;
        }
      }
    }
    return false;
  };

  auto overflow_count = [&] {
    int n = 0;
    for (int use : g.h_use) n += (use > opts.edge_capacity);
    for (int use : g.v_use) n += (use > opts.edge_capacity);
    return n;
  };

  // Initial pass: serial, in net order, so every net negotiates against
  // all previously committed routes.
  double pressure = 4.0;
  {
    SearchScratch& s = thread_scratch();
    for (std::size_t i = 0; i < nets.size(); ++i) {
      route_net(g, s, nets[i], result.nets[i], opts, pressure, wins[i],
                /*allow_escalate=*/true);
    }
  }

  int last_overflow = std::numeric_limits<int>::max();
  for (int round = 1;; ++round) {
    const int cur = overflow_count();
    bool any_failed = false;
    for (const RoutedNet& rn : result.nets) any_failed |= !rn.routed;
    if (cur == 0 && !any_failed) break;
    // max_iterations bounds the guaranteed negotiation rounds (matching
    // the historical router's budget); past it, keep going only while
    // overflow still strictly shrinks, so termination is guaranteed.
    if (round >= std::max(1, opts.max_iterations) && cur >= last_overflow) {
      break;
    }
    last_overflow = cur;

    // Rip up nets that traverse overflowed edges; bump history costs.
    for (std::size_t e = 0; e < g.h_use.size(); ++e) {
      if (g.h_use[e] > opts.edge_capacity) g.h_hist[e] += 2.0;
    }
    for (std::size_t e = 0; e < g.v_use.size(); ++e) {
      if (g.v_use[e] > opts.edge_capacity) g.v_hist[e] += 2.0;
    }
    pressure *= 2.0;
    std::vector<std::size_t> ripped;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      RoutedNet& rn = result.nets[i];
      bool needs = !rn.routed;
      for (const auto& path : rn.paths) {
        if (overflowed(path)) needs = true;
      }
      if (!needs) continue;
      ripped.push_back(i);
      for (const auto& path : rn.paths) adjust_usage(g, path, -1);
    }
    if (ripped.empty()) break;

    // Congestion relief needs detours ever farther from the pin bbox, so
    // a ripped net's window doubles its margin each round (clamped to the
    // grid by window_of). Windows only grow, so the disjointness grouping
    // below stays conservative.
    const int grow =
        std::max(1, opts.window_margin) << std::min(round, 16);
    for (std::size_t i : ripped) {
      wins[i] = window_of(g, nets[i].pins, grow);
    }

    // Greedy first-fit grouping: each group only holds nets whose search
    // windows are pairwise disjoint, so no two nets in a group can read or
    // write the same edge — routing a group concurrently is bit-identical
    // to routing it serially, for any thread count.
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i : ripped) {
      bool placed = false;
      for (auto& grp : groups) {
        bool ok = true;
        for (std::size_t j : grp) {
          if (!wins[i].disjoint(wins[j])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          grp.push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({i});
    }

    for (const auto& grp : groups) {
      // Batch phase: fixed windows, no escalation (escalation could leave
      // the window and race another net in the group).
      util::parallel_for_each(pool, grp.size(), [&](std::size_t k) {
        const std::size_t i = grp[k];
        route_net(g, thread_scratch(), nets[i], result.nets[i], opts,
                  pressure, wins[i], /*allow_escalate=*/false);
      });
      // Serial retries for in-window failures, in net order, with
      // escalation — still deterministic: the grid state after the batch
      // does not depend on the thread count.
      for (std::size_t i : grp) {
        if (result.nets[i].routed) continue;
        for (const auto& path : result.nets[i].paths) {
          adjust_usage(g, path, -1);
        }
        route_net(g, thread_scratch(), nets[i], result.nets[i], opts,
                  pressure, wins[i], /*allow_escalate=*/true);
      }
    }
  }

  for (const RoutedNet& rn : result.nets) {
    result.total_wirelength_m += rn.wirelength_m;
    result.total_vias += rn.vias;
    if (!rn.routed) ++result.failed_nets;
  }
  for (int use : g.h_use) {
    if (use > opts.edge_capacity) ++result.overflowed_edges;
  }
  for (int use : g.v_use) {
    if (use > opts.edge_capacity) ++result.overflowed_edges;
  }
  return result;
}

}  // namespace vcoadc::synth
