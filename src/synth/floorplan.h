// Floorplan generation (Sec. 3.3 / Fig. 10b / Fig. 12):
//   1. Partition the flattened circuit into power domains and component
//      groups (cells whose supply pins tie to the same P/G nets share a
//      domain; supply-less cells such as resistors go into groups).
//   2. Floorplan the domains/groups as rectangular regions of a die sized
//      for a target placement density ("the circuit is floorplanned such
//      that the placement density is similar in both technology nodes").
//
// The region arrangement is computed with recursive area bisection, which
// yields a slicing floorplan like the paper's Fig. 14 screenshot; region
// heights snap to the standard-cell row grid so every region holds an
// integer number of rows.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/geometry.h"

namespace vcoadc::synth {

/// One power domain or component group to be floorplanned.
struct RegionSpec {
  std::string name;             ///< e.g. "PD_VCTRLP" or "GRP_DAC_RES1"
  bool is_group = false;        ///< true for supply-less component groups
  std::vector<int> members;     ///< indices into the flat instance vector
  double cell_area_m2 = 0;      ///< sum of member cell areas
  double max_cell_width_m = 0;  ///< widest member (regions must fit it)
};

/// Partitions flat instances into RegionSpecs by power_domain / group.
std::vector<RegionSpec> partition_into_regions(
    const std::vector<netlist::FlatInstance>& flat);

/// A placed region in the floorplan.
struct PlacedRegion {
  RegionSpec spec;
  Rect rect;
};

struct FloorplanOptions {
  double target_utilization = 0.6;  ///< cell area / region area
  double aspect_ratio = 1.0;        ///< die height / width
  double row_height_m = 1e-6;       ///< standard-cell row height
  double site_width_m = 1e-7;       ///< placement site (M1 pitch)
};

struct Floorplan {
  Rect die;
  std::vector<PlacedRegion> regions;
  double row_height_m = 0;
  double site_width_m = 0;

  const PlacedRegion* find(const std::string& name) const;
  /// Sum of region areas / die area.
  double region_area_fraction() const;
};

/// Computes the floorplan. Regions are disjoint, inside the die, row-aligned
/// in y and sized for the target utilization. Aborts only on impossible
/// inputs (no regions / zero area).
Floorplan make_floorplan(const std::vector<RegionSpec>& regions,
                         const FloorplanOptions& opts);

/// Serializes region constraints in the spirit of an Encounter .fp file
/// (the "floorplan specification" input of Fig. 9).
std::string write_floorplan_spec(const Floorplan& fp);

struct FloorplanParseResult {
  bool ok = false;
  std::string error;
  Floorplan floorplan;  ///< geometry only; RegionSpec members stay empty
};

/// Parses the write_floorplan_spec format back into a Floorplan (die +
/// region rectangles + names/kinds). Member lists are re-derived by the
/// caller from the netlist (they are not part of the .fp geometry).
FloorplanParseResult parse_floorplan_spec(const std::string& text);

}  // namespace vcoadc::synth
