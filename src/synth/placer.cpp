#include "synth/placer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/rng.h"
#include "util/strings.h"

namespace vcoadc::synth {
namespace {

/// Net -> member flat indices, signal nets only.
std::map<std::string, std::vector<int>> build_signal_nets(
    const std::vector<netlist::FlatInstance>& flat) {
  std::map<std::string, std::vector<int>> nets;
  for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
    for (const auto& [pin, net] : flat[static_cast<std::size_t>(i)].conn) {
      if (is_supply_net(net)) continue;
      nets[net].push_back(i);
    }
  }
  // Single-pin nets contribute nothing.
  for (auto it = nets.begin(); it != nets.end();) {
    std::sort(it->second.begin(), it->second.end());
    it->second.erase(std::unique(it->second.begin(), it->second.end()),
                     it->second.end());
    if (it->second.size() < 2) {
      it = nets.erase(it);
    } else {
      ++it;
    }
  }
  return nets;
}

/// Orders `members` by iterative barycenter over their shared nets.
std::vector<int> connectivity_order(
    const std::vector<int>& members,
    const std::map<std::string, std::vector<int>>& nets, int passes) {
  std::map<int, double> pos;
  for (std::size_t i = 0; i < members.size(); ++i) {
    pos[members[i]] = static_cast<double>(i);
  }
  std::map<int, std::vector<int>> adj;
  for (const auto& [name, cells] : nets) {
    std::vector<int> local;
    for (int c : cells) {
      if (pos.count(c)) local.push_back(c);
    }
    if (local.size() < 2) continue;
    for (int c : local) {
      for (int d : local) {
        if (c != d) adj[c].push_back(d);
      }
    }
  }
  std::vector<int> order = members;
  for (int p = 0; p < passes; ++p) {
    std::map<int, double> next = pos;
    for (int m : order) {
      auto it = adj.find(m);
      if (it == adj.end() || it->second.empty()) continue;
      double s = 0;
      for (int d : it->second) s += pos[d];
      next[m] = 0.5 * pos[m] + 0.5 * s / static_cast<double>(it->second.size());
    }
    pos = std::move(next);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return pos[a] < pos[b]; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      pos[order[i]] = static_cast<double>(i);
    }
  }
  return order;
}

struct RegionRows {
  std::vector<double> row_y;  // absolute y of each row bottom
  double x0 = 0, x1 = 0;      // usable x span
};

RegionRows make_rows(const Rect& region, const Rect& die, double row_h) {
  RegionRows rows;
  rows.x0 = region.x;
  rows.x1 = region.x2();
  // Rows align to the global die row grid.
  double y = die.y + std::ceil((region.y - die.y) / row_h - 1e-9) * row_h;
  for (; y + row_h <= region.y2() + 1e-12; y += row_h) {
    rows.row_y.push_back(y);
  }
  return rows;
}

/// Packs `order` into a region's rows, serpentine. Returns overflow flag.
bool pack_region(const std::vector<netlist::FlatInstance>& flat,
                 const PlacedRegion& region, const RegionRows& rows,
                 const std::vector<int>& order, const Floorplan& fp,
                 Placement& pl) {
  const double row_h = fp.row_height_m;
  const double site = fp.site_width_m;
  bool overflow = false;
  std::size_t row = 0;
  double cursor = rows.x0;
  std::vector<std::vector<int>> row_members(rows.row_y.size());
  for (int idx : order) {
    const auto& cell = *flat[static_cast<std::size_t>(idx)].cell;
    const double w = std::ceil(cell.width_m / site - 1e-9) * site;
    if (cursor + w > rows.x1 + 1e-12 && cursor > rows.x0) {
      ++row;
      cursor = rows.x0;
      if (row >= rows.row_y.size()) {
        row = rows.row_y.size() - 1;
        cursor = rows.x1;  // spill past the edge; DRC reports it
        overflow = true;
      }
    }
    PlacedCell& pc = pl.cells[static_cast<std::size_t>(idx)];
    pc.rect = {cursor, rows.row_y[row], w, row_h};
    pc.row =
        static_cast<int>(std::lround((rows.row_y[row] - fp.die.y) / row_h));
    pc.region = region.spec.name;
    cursor += w;
    row_members[row].push_back(idx);
  }
  // Mirror odd rows so consecutive order indices stay spatially adjacent.
  for (std::size_t r = 1; r < row_members.size(); r += 2) {
    for (int idx : row_members[r]) {
      PlacedCell& pc = pl.cells[static_cast<std::size_t>(idx)];
      const double mirrored = rows.x0 + (rows.x1 - pc.rect.x2());
      pc.rect.x = std::max(rows.x0, std::floor(mirrored / site + 0.5) * site);
    }
  }
  return overflow;
}

double placement_hpwl(const std::map<std::string, std::vector<int>>& nets,
                      const Placement& pl) {
  double total = 0;
  for (const auto& [name, cells] : nets) {
    BBox bb;
    for (int c : cells) {
      bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
    }
    total += bb.half_perimeter();
  }
  return total;
}

}  // namespace

bool is_supply_net(const std::string& net) {
  return netlist::is_supply_net(net);
}

Placement place(const std::vector<netlist::FlatInstance>& flat,
                const Floorplan& fp, const PlacementOptions& opts) {
  const auto nets = build_signal_nets(flat);

  // Region list: either the real floorplan regions or one die-wide region
  // reproducing the naive (PD-oblivious) flow.
  std::vector<PlacedRegion> regions;
  if (opts.respect_regions) {
    regions = fp.regions;
  } else {
    PlacedRegion all;
    all.spec.name = "DIE";
    for (const PlacedRegion& r : fp.regions) {
      for (int m : r.spec.members) all.spec.members.push_back(m);
    }
    std::sort(all.spec.members.begin(), all.spec.members.end());
    all.rect = fp.die;
    regions.push_back(std::move(all));
  }

  auto pack_all = [&](bool use_barycenter) {
    Placement pl;
    pl.cells.resize(flat.size());
    for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
      pl.cells[static_cast<std::size_t>(i)].flat_index = i;
    }
    for (const PlacedRegion& region : regions) {
      const RegionRows rows = make_rows(region.rect, fp.die, fp.row_height_m);
      if (rows.row_y.empty()) {
        pl.overflow = true;
        continue;
      }
      const std::vector<int> order =
          use_barycenter
              ? connectivity_order(region.spec.members, nets,
                                   opts.barycenter_passes)
              : region.spec.members;
      pl.overflow |= pack_region(flat, region, rows, order, fp, pl);
    }
    return pl;
  };

  // Pack with both orderings and keep the better starting point.
  Placement natural = pack_all(false);
  Placement pl = natural;
  if (opts.barycenter_passes > 0) {
    Placement bary = pack_all(true);
    if (placement_hpwl(nets, bary) < placement_hpwl(nets, natural)) {
      pl = std::move(bary);
    }
  }

  // Greedy HPWL-improving swaps within each region (equal-width cells only,
  // which keeps rows legal without repacking).
  if (opts.refine_passes > 0) {
    util::Rng rng(opts.seed);
    std::map<int, std::vector<const std::vector<int>*>> cell_nets;
    for (const auto& [name, cells] : nets) {
      for (int c : cells) cell_nets[c].push_back(&cells);
    }
    auto net_hpwl = [&](const std::vector<int>& cells) {
      BBox bb;
      for (int c : cells) {
        bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
      }
      return bb.half_perimeter();
    };
    auto pair_cost = [&](int a, int b) {
      double cost = 0;
      for (const auto* nc : cell_nets[a]) cost += net_hpwl(*nc);
      for (const auto* nc : cell_nets[b]) {
        bool shared = false;
        for (const auto* na : cell_nets[a]) {
          if (na == nc) shared = true;
        }
        if (!shared) cost += net_hpwl(*nc);
      }
      return cost;
    };
    for (const PlacedRegion& region : regions) {
      const auto& members = region.spec.members;
      if (members.size() < 2) continue;
      const int tries =
          opts.refine_passes * static_cast<int>(members.size());
      for (int t = 0; t < tries; ++t) {
        const int a = members[rng.below(members.size())];
        const int b = members[rng.below(members.size())];
        if (a == b) continue;
        PlacedCell& ca = pl.cells[static_cast<std::size_t>(a)];
        PlacedCell& cb = pl.cells[static_cast<std::size_t>(b)];
        if (std::fabs(ca.rect.w - cb.rect.w) > 1e-12) continue;
        const double before = pair_cost(a, b);
        std::swap(ca.rect.x, cb.rect.x);
        std::swap(ca.rect.y, cb.rect.y);
        std::swap(ca.row, cb.row);
        const double after = pair_cost(a, b);
        if (after > before) {
          std::swap(ca.rect.x, cb.rect.x);
          std::swap(ca.rect.y, cb.rect.y);
          std::swap(ca.row, cb.row);
        }
      }
    }
  }
  return pl;
}

double total_hpwl(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl) {
  std::map<std::string, BBox> boxes;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    for (const auto& [pin, net] : flat[i].conn) {
      if (is_supply_net(net)) continue;
      boxes[net].expand(pl.cells[i].rect.center());
    }
  }
  double total = 0;
  for (const auto& [net, bb] : boxes) total += bb.half_perimeter();
  return total;
}

}  // namespace vcoadc::synth
