#include "synth/placer.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace vcoadc::synth {
namespace {

/// Net ids with >= 2 member cells; single-pin nets contribute nothing to
/// ordering or HPWL deltas.
std::vector<int> multi_pin_nets(const NetDb& db) {
  std::vector<int> ids;
  for (int n = 0; n < db.num_nets(); ++n) {
    if (db.members(n).size() >= 2) ids.push_back(n);
  }
  return ids;
}

/// Orders `members` by iterative barycenter over their shared nets.
///
/// Star model: instead of expanding each k-pin net into k(k-1) clique
/// neighbour entries, keep one per-net position sum S_n per pass; cell m's
/// neighbour sum over net n is S_n - pos[m] and its neighbour count is
/// |n|-1. Positions are integer ranks after every pass, so all sums are
/// exact in double arithmetic and the result is bit-identical to the old
/// clique expansion at O(pins) instead of O(pins^2) per pass.
std::vector<int> connectivity_order(const std::vector<int>& members,
                                    const NetDb& db,
                                    const std::vector<int>& multi,
                                    int passes) {
  const auto n_cells = static_cast<std::size_t>(db.num_cells());
  std::vector<double> pos(n_cells, 0.0);
  std::vector<char> in_region(n_cells, 0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto m = static_cast<std::size_t>(members[i]);
    pos[m] = static_cast<double>(i);
    in_region[m] = 1;
  }

  // Region-local member lists per net (only nets with >= 2 local members
  // pull on the ordering), plus each cell's list of those nets.
  std::vector<std::vector<int>> local;
  std::vector<std::vector<int>> cell_local(n_cells);
  for (int n : multi) {
    std::vector<int> lm;
    for (int c : db.members(n)) {
      if (in_region[static_cast<std::size_t>(c)]) lm.push_back(c);
    }
    if (lm.size() < 2) continue;
    const int li = static_cast<int>(local.size());
    for (int c : lm) cell_local[static_cast<std::size_t>(c)].push_back(li);
    local.push_back(std::move(lm));
  }

  std::vector<int> order = members;
  std::vector<double> net_sum(local.size(), 0.0);
  std::vector<double> next(n_cells, 0.0);
  for (int p = 0; p < passes; ++p) {
    for (std::size_t li = 0; li < local.size(); ++li) {
      double s = 0;
      for (int c : local[li]) s += pos[static_cast<std::size_t>(c)];
      net_sum[li] = s;
    }
    for (int m : order) {
      const auto mi = static_cast<std::size_t>(m);
      double s = 0, cnt = 0;
      for (int li : cell_local[mi]) {
        s += net_sum[static_cast<std::size_t>(li)] - pos[mi];
        cnt += static_cast<double>(local[static_cast<std::size_t>(li)].size() -
                                   1);
      }
      next[mi] = (cnt > 0) ? 0.5 * pos[mi] + 0.5 * s / cnt : pos[mi];
    }
    for (int m : order) {
      pos[static_cast<std::size_t>(m)] = next[static_cast<std::size_t>(m)];
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return pos[static_cast<std::size_t>(a)] <
             pos[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 0; i < order.size(); ++i) {
      pos[static_cast<std::size_t>(order[i])] = static_cast<double>(i);
    }
  }
  return order;
}

struct RegionRows {
  std::vector<double> row_y;  // absolute y of each row bottom
  double x0 = 0, x1 = 0;      // usable x span
};

RegionRows make_rows(const Rect& region, const Rect& die, double row_h) {
  RegionRows rows;
  rows.x0 = region.x;
  rows.x1 = region.x2();
  // Rows align to the global die row grid.
  double y = die.y + std::ceil((region.y - die.y) / row_h - 1e-9) * row_h;
  for (; y + row_h <= region.y2() + 1e-12; y += row_h) {
    rows.row_y.push_back(y);
  }
  return rows;
}

/// Packs `order` into a region's rows, serpentine. Returns overflow flag.
bool pack_region(const std::vector<netlist::FlatInstance>& flat,
                 const PlacedRegion& region, const RegionRows& rows,
                 const std::vector<int>& order, const Floorplan& fp,
                 Placement& pl) {
  const double row_h = fp.row_height_m;
  const double site = fp.site_width_m;
  bool overflow = false;
  std::size_t row = 0;
  double cursor = rows.x0;
  std::vector<std::vector<int>> row_members(rows.row_y.size());
  for (int idx : order) {
    const auto& cell = *flat[static_cast<std::size_t>(idx)].cell;
    const double w = std::ceil(cell.width_m / site - 1e-9) * site;
    if (cursor + w > rows.x1 + 1e-12 && cursor > rows.x0) {
      ++row;
      cursor = rows.x0;
      if (row >= rows.row_y.size()) {
        row = rows.row_y.size() - 1;
        cursor = rows.x1;  // spill past the edge; DRC reports it
        overflow = true;
      }
    }
    PlacedCell& pc = pl.cells[static_cast<std::size_t>(idx)];
    pc.rect = {cursor, rows.row_y[row], w, row_h};
    pc.row =
        static_cast<int>(std::lround((rows.row_y[row] - fp.die.y) / row_h));
    pc.region = region.spec.name;
    cursor += w;
    row_members[row].push_back(idx);
  }
  // Mirror odd rows so consecutive order indices stay spatially adjacent.
  for (std::size_t r = 1; r < row_members.size(); r += 2) {
    for (int idx : row_members[r]) {
      PlacedCell& pc = pl.cells[static_cast<std::size_t>(idx)];
      const double mirrored = rows.x0 + (rows.x1 - pc.rect.x2());
      pc.rect.x = std::max(rows.x0, std::floor(mirrored / site + 0.5) * site);
    }
  }
  return overflow;
}

}  // namespace

bool is_supply_net(const std::string& net) {
  return netlist::is_supply_net(net);
}

double total_hpwl(const NetDb& db, const Placement& pl) {
  double total = 0;
  for (int n = 0; n < db.num_nets(); ++n) {
    BBox bb;
    for (int c : db.members(n)) {
      bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
    }
    total += bb.half_perimeter();
  }
  return total;
}

void refine_equal_width_swaps(const NetDb& db,
                              const std::vector<PlacedRegion>& regions,
                              int refine_passes, util::Rng& rng,
                              Placement& pl) {
  const auto n_nets = static_cast<std::size_t>(db.num_nets());
  auto center_of = [&](int c) {
    return pl.cells[static_cast<std::size_t>(c)].rect.center();
  };

  // Cached per-net bbox + HPWL for every multi-pin net; swaps update these
  // incrementally and the caches are restored on reject.
  std::vector<char> is_multi(n_nets, 0);
  std::vector<BBox> net_bb(n_nets);
  std::vector<double> net_hp(n_nets, 0.0);
  for (std::size_t n = 0; n < n_nets; ++n) {
    if (db.members(static_cast<int>(n)).size() < 2) continue;
    is_multi[n] = 1;
    BBox bb;
    for (int c : db.members(static_cast<int>(n))) bb.expand(center_of(c));
    net_bb[n] = bb;
    net_hp[n] = bb.half_perimeter();
  }

  std::vector<int> in_affected(n_nets, -1);
  std::vector<int> is_shared(n_nets, -1);
  std::vector<int> affected;
  std::vector<std::pair<BBox, double>> saved;  // old cache of affected[i]
  int tick = 0;

  // Exact bbox of net n after member `moved` went old_c -> new_c: if the
  // old centre was strictly interior the extremes were attained elsewhere,
  // so expanding the cached bbox by the new centre is exact; otherwise the
  // moved cell may have defined an extreme and the members are rescanned.
  auto moved_bbox = [&](std::size_t n, Point old_c, Point new_c) {
    const BBox& bb = net_bb[n];
    if (old_c.x > bb.xmin && old_c.x < bb.xmax && old_c.y > bb.ymin &&
        old_c.y < bb.ymax) {
      BBox out = bb;
      out.expand(new_c);
      return out;
    }
    BBox out;
    for (int c : db.members(static_cast<int>(n))) out.expand(center_of(c));
    return out;
  };

  for (const PlacedRegion& region : regions) {
    const auto& members = region.spec.members;
    if (members.size() < 2) continue;
    const int tries = refine_passes * static_cast<int>(members.size());
    for (int t = 0; t < tries; ++t) {
      const int a = members[rng.below(members.size())];
      const int b = members[rng.below(members.size())];
      if (a == b) continue;
      PlacedCell& ca = pl.cells[static_cast<std::size_t>(a)];
      PlacedCell& cb = pl.cells[static_cast<std::size_t>(b)];
      if (std::fabs(ca.rect.w - cb.rect.w) > 1e-12) continue;

      // Affected nets in the historical cost order: a's nets, then b's
      // unshared nets, ascending id (= net-name order) within each group.
      ++tick;
      affected.clear();
      std::size_t a_count = 0;
      for (int n : db.nets_of(a)) {
        if (!is_multi[static_cast<std::size_t>(n)]) continue;
        in_affected[static_cast<std::size_t>(n)] = tick;
        affected.push_back(n);
      }
      a_count = affected.size();
      for (int n : db.nets_of(b)) {
        if (!is_multi[static_cast<std::size_t>(n)]) continue;
        if (in_affected[static_cast<std::size_t>(n)] == tick) {
          is_shared[static_cast<std::size_t>(n)] = tick;
        } else {
          affected.push_back(n);
        }
      }
      double before = 0;
      for (int n : affected) before += net_hp[static_cast<std::size_t>(n)];

      const Point a_old = ca.rect.center();
      const Point b_old = cb.rect.center();
      std::swap(ca.rect.x, cb.rect.x);
      std::swap(ca.rect.y, cb.rect.y);
      std::swap(ca.row, cb.row);

      // Shared nets keep an identical point multiset (equal-width cells in
      // equal-height rows trade centres exactly), so only unshared nets
      // change. Update their caches, remembering the old values.
      saved.clear();
      double after = 0;
      for (std::size_t k = 0; k < affected.size(); ++k) {
        const auto n = static_cast<std::size_t>(affected[k]);
        if (is_shared[n] == tick) {
          after += net_hp[n];
          continue;
        }
        const Point old_c = (k < a_count) ? a_old : b_old;
        const Point new_c = (k < a_count) ? b_old : a_old;
        saved.emplace_back(net_bb[n], net_hp[n]);
        net_bb[n] = moved_bbox(n, old_c, new_c);
        net_hp[n] = net_bb[n].half_perimeter();
        after += net_hp[n];
      }

      if (after > before) {
        std::swap(ca.rect.x, cb.rect.x);
        std::swap(ca.rect.y, cb.rect.y);
        std::swap(ca.row, cb.row);
        std::size_t s = 0;
        for (std::size_t k = 0; k < affected.size(); ++k) {
          const auto n = static_cast<std::size_t>(affected[k]);
          if (is_shared[n] == tick) continue;
          net_bb[n] = saved[s].first;
          net_hp[n] = saved[s].second;
          ++s;
        }
      }
    }
  }
}

Placement place(const std::vector<netlist::FlatInstance>& flat,
                const Floorplan& fp, const PlacementOptions& opts) {
  const NetDb db(flat);
  return place(flat, fp, opts, db);
}

Placement place(const std::vector<netlist::FlatInstance>& flat,
                const Floorplan& fp, const PlacementOptions& opts,
                const NetDb& db) {
  const std::vector<int> multi = multi_pin_nets(db);

  // Region list: either the real floorplan regions or one die-wide region
  // reproducing the naive (PD-oblivious) flow.
  std::vector<PlacedRegion> regions;
  if (opts.respect_regions) {
    regions = fp.regions;
  } else {
    PlacedRegion all;
    all.spec.name = "DIE";
    for (const PlacedRegion& r : fp.regions) {
      for (int m : r.spec.members) all.spec.members.push_back(m);
    }
    std::sort(all.spec.members.begin(), all.spec.members.end());
    all.rect = fp.die;
    regions.push_back(std::move(all));
  }

  auto pack_all = [&](bool use_barycenter) {
    Placement pl;
    pl.cells.resize(flat.size());
    for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
      pl.cells[static_cast<std::size_t>(i)].flat_index = i;
    }
    for (const PlacedRegion& region : regions) {
      const RegionRows rows = make_rows(region.rect, fp.die, fp.row_height_m);
      if (rows.row_y.empty()) {
        pl.overflow = true;
        continue;
      }
      const std::vector<int> order =
          use_barycenter
              ? connectivity_order(region.spec.members, db, multi,
                                   opts.barycenter_passes)
              : region.spec.members;
      pl.overflow |= pack_region(flat, region, rows, order, fp, pl);
    }
    return pl;
  };

  // Pack with both orderings and keep the better starting point.
  Placement natural = pack_all(false);
  Placement pl = natural;
  if (opts.barycenter_passes > 0) {
    Placement bary = pack_all(true);
    if (total_hpwl(db, bary) < total_hpwl(db, natural)) {
      pl = std::move(bary);
    }
  }

  // Greedy HPWL-improving swaps within each region (equal-width cells only,
  // which keeps rows legal without repacking).
  if (opts.refine_passes > 0) {
    util::Rng rng(opts.seed);
    refine_equal_width_swaps(db, regions, opts.refine_passes, rng, pl);
  }
  return pl;
}

double total_hpwl(const std::vector<netlist::FlatInstance>& flat,
                  const Placement& pl) {
  const NetDb db(flat);
  return total_hpwl(db, pl);
}

}  // namespace vcoadc::synth
