// Layout database and serialization: the "resulting layout" of Fig. 9.
// Includes a GDS-like text writer and an ASCII floorplan renderer that
// reproduces the Fig. 13/14 screenshots in terminal form.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/floorplan.h"
#include "synth/placer.h"

namespace vcoadc::synth {

struct LayoutStats {
  double die_area_m2 = 0;
  double cell_area_m2 = 0;
  double utilization = 0;      ///< cell area / die area
  int num_cells = 0;
  int num_rows = 0;
  int num_regions = 0;
};

class Layout {
 public:
  Layout(std::vector<netlist::FlatInstance> flat, Floorplan fp, Placement pl);

  LayoutStats stats() const;

  /// GDS-like text stream: one record per region and per placed cell.
  std::string write_gds_text(const std::string& design_name) const;

  /// ASCII rendering of the floorplan with region labels (Fig. 14 analog).
  /// `width` is the output width in characters.
  std::string render_ascii(int width = 100) const;

  const Floorplan& floorplan() const { return fp_; }
  const Placement& placement() const { return pl_; }
  const std::vector<netlist::FlatInstance>& flat() const { return flat_; }

 private:
  std::vector<netlist::FlatInstance> flat_;
  Floorplan fp_;
  Placement pl_;
};

}  // namespace vcoadc::synth
