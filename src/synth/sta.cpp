#include "synth/sta.h"

#include <algorithm>
#include <map>
#include <stack>

#include "netlist/liberty.h"
#include "synth/net_db.h"

namespace vcoadc::synth {
namespace {

struct Arc {
  int from_net = -1;
  int to_net = -1;
  int gate = -1;
  double delay = 0;
};

/// Iterative Tarjan SCC over the net graph.
std::vector<int> strongly_connected_components(
    int n_nodes, const std::vector<std::vector<int>>& adj) {
  std::vector<int> comp(static_cast<std::size_t>(n_nodes), -1);
  std::vector<int> index(static_cast<std::size_t>(n_nodes), -1);
  std::vector<int> low(static_cast<std::size_t>(n_nodes), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n_nodes), 0);
  std::vector<int> stack_nodes;
  int next_index = 0;
  int next_comp = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  for (int start = 0; start < n_nodes; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    std::stack<Frame> frames;
    frames.push({start, 0});
    index[static_cast<std::size_t>(start)] = low[static_cast<std::size_t>(start)] = next_index++;
    stack_nodes.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = 1;
    while (!frames.empty()) {
      Frame& f = frames.top();
      const auto& edges = adj[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = next_index++;
          stack_nodes.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = 1;
          frames.push({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        frames.pop();
        if (!frames.empty()) {
          const int parent = frames.top().v;
          low[static_cast<std::size_t>(parent)] = std::min(
              low[static_cast<std::size_t>(parent)], low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = stack_nodes.back();
            stack_nodes.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            comp[static_cast<std::size_t>(w)] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
      }
    }
  }
  return comp;
}

}  // namespace

TimingReport analyze_timing(const netlist::Design& design,
                            const tech::TechNode& node,
                            const TimingOptions& opts) {
  TimingReport rep;
  rep.clock_period_s = opts.clock_period_s;

  const auto flat = design.flatten();

  // Interned net ids: dense, name-ordered, shared layout with every other
  // synth stage. All per-net state below is flat-array indexed.
  const NetDb db(flat);
  const int n_nets = db.num_nets();
  std::vector<double> net_load(static_cast<std::size_t>(n_nets), 0.0);
  std::vector<BBox> net_bbox(static_cast<std::size_t>(n_nets));

  // Load per net: sum of input-pin caps + wire cap from placed HPWL.
  for (std::size_t i = 0; i < flat.size(); ++i) {
    for (const NetDb::CellPin& cp : db.cell_pins(static_cast<int>(i))) {
      const netlist::PinSpec* spec = flat[i].cell->find_pin(*cp.pin);
      if (spec == nullptr) continue;
      const auto id = static_cast<std::size_t>(cp.net);
      if (spec->dir == netlist::PortDir::kInput) {
        net_load[id] += flat[i].cell->input_cap_f;
      }
      if (opts.placement != nullptr) {
        net_bbox[id].expand(opts.placement->cells[i].rect.center());
      }
    }
  }
  if (opts.placement != nullptr) {
    for (std::size_t id = 0; id < net_bbox.size(); ++id) {
      net_load[id] += net_bbox[id].half_perimeter() * opts.cap_per_m;
    }
  }

  // Timing arcs: every input pin -> output pin of each gate.
  std::vector<Arc> arcs;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n_nets));
  std::vector<int> in_nets;
  for (std::size_t gi = 0; gi < flat.size(); ++gi) {
    const auto& fi = flat[gi];
    if (fi.cell->is_resistor) continue;
    ++rep.num_gates;
    int out_net = -1;
    in_nets.clear();
    for (const NetDb::CellPin& cp : db.cell_pins(static_cast<int>(gi))) {
      const netlist::PinSpec* spec = fi.cell->find_pin(*cp.pin);
      if (spec == nullptr) continue;
      if (spec->dir == netlist::PortDir::kOutput) out_net = cp.net;
      if (spec->dir == netlist::PortDir::kInput) in_nets.push_back(cp.net);
    }
    if (out_net < 0) continue;
    const double intrinsic = netlist::cell_intrinsic_delay(*fi.cell, node);
    // Linear delay model normalized to FO4: intrinsic corresponds to
    // driving 4 copies of the cell's own input cap.
    const double ref_load = 4.0 * fi.cell->input_cap_f;
    const double load = net_load[static_cast<std::size_t>(out_net)];
    const double delay =
        intrinsic * (0.5 + 0.5 * ((ref_load > 0) ? load / ref_load : 1.0));
    for (int in : in_nets) {
      adj[static_cast<std::size_t>(in)].push_back(out_net);
      arcs.push_back({in, out_net, static_cast<int>(gi), delay});
    }
  }
  rep.num_arcs = static_cast<int>(arcs.size());

  // Cut loops: arcs whose endpoints share an SCC of size > 1.
  const auto comp = strongly_connected_components(n_nets, adj);
  std::map<int, int> comp_size;
  for (int c : comp) ++comp_size[c];
  int cut_components = 0;
  {
    std::map<int, bool> counted;
    for (const Arc& a : arcs) {
      if (comp[static_cast<std::size_t>(a.from_net)] ==
              comp[static_cast<std::size_t>(a.to_net)] &&
          comp_size[comp[static_cast<std::size_t>(a.from_net)]] > 1) {
        const int c = comp[static_cast<std::size_t>(a.from_net)];
        if (!counted[c]) {
          counted[c] = true;
          ++cut_components;
        }
      }
    }
  }
  rep.loops_cut = cut_components;
  std::vector<Arc> dag_arcs;
  for (const Arc& a : arcs) {
    const bool in_loop =
        comp[static_cast<std::size_t>(a.from_net)] ==
            comp[static_cast<std::size_t>(a.to_net)] &&
        comp_size[comp[static_cast<std::size_t>(a.from_net)]] > 1;
    if (!in_loop) dag_arcs.push_back(a);
  }

  // Longest path over the DAG (topological order by Kahn on dag arcs).
  std::vector<int> indeg(static_cast<std::size_t>(n_nets), 0);
  std::vector<std::vector<int>> out_arcs(static_cast<std::size_t>(n_nets));
  for (std::size_t ai = 0; ai < dag_arcs.size(); ++ai) {
    ++indeg[static_cast<std::size_t>(dag_arcs[ai].to_net)];
    out_arcs[static_cast<std::size_t>(dag_arcs[ai].from_net)].push_back(
        static_cast<int>(ai));
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_nets));
  for (int i = 0; i < n_nets; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) order.push_back(i);
  }
  std::vector<double> arrival(static_cast<std::size_t>(n_nets), 0.0);
  std::vector<int> from_arc(static_cast<std::size_t>(n_nets), -1);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int u = order[head];
    for (int ai : out_arcs[static_cast<std::size_t>(u)]) {
      const Arc& a = dag_arcs[static_cast<std::size_t>(ai)];
      const double t = arrival[static_cast<std::size_t>(u)] + a.delay;
      if (t > arrival[static_cast<std::size_t>(a.to_net)]) {
        arrival[static_cast<std::size_t>(a.to_net)] = t;
        from_arc[static_cast<std::size_t>(a.to_net)] = ai;
      }
      if (--indeg[static_cast<std::size_t>(a.to_net)] == 0) {
        order.push_back(a.to_net);
      }
    }
  }

  // Critical endpoint.
  int worst = -1;
  for (int i = 0; i < n_nets; ++i) {
    if (worst < 0 || arrival[static_cast<std::size_t>(i)] >
                         arrival[static_cast<std::size_t>(worst)]) {
      worst = i;
    }
  }
  if (worst >= 0) {
    rep.critical_delay_s = arrival[static_cast<std::size_t>(worst)];
    // Walk the path backwards.
    std::vector<TimingPathStep> path;
    int cur = worst;
    while (cur >= 0 && from_arc[static_cast<std::size_t>(cur)] >= 0) {
      const Arc& a =
          dag_arcs[static_cast<std::size_t>(from_arc[static_cast<std::size_t>(cur)])];
      TimingPathStep step;
      step.through_gate = flat[static_cast<std::size_t>(a.gate)].path;
      step.to_net = db.name(cur);
      step.arc_delay_s = a.delay;
      step.arrival_s = arrival[static_cast<std::size_t>(cur)];
      path.push_back(step);
      cur = a.from_net;
    }
    std::reverse(path.begin(), path.end());
    rep.critical_path = std::move(path);
  }
  rep.slack_s = rep.clock_period_s - rep.critical_delay_s;
  rep.max_clock_hz =
      (rep.critical_delay_s > 0) ? 1.0 / rep.critical_delay_s : 0.0;
  return rep;
}

}  // namespace vcoadc::synth
