file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_scaling_forecast.dir/bench_extension_scaling_forecast.cpp.o"
  "CMakeFiles/bench_extension_scaling_forecast.dir/bench_extension_scaling_forecast.cpp.o.d"
  "bench_extension_scaling_forecast"
  "bench_extension_scaling_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_scaling_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
