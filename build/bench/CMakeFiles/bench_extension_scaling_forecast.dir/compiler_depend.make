# Empty compiler generated dependencies file for bench_extension_scaling_forecast.
# This may be replaced when dependencies are built.
