
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_comparison.cpp" "bench/CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vcoadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vcoadc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vcoadc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vcoadc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/msim/CMakeFiles/vcoadc_msim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vcoadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
