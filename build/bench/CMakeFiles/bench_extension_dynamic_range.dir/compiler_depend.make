# Empty compiler generated dependencies file for bench_extension_dynamic_range.
# This may be replaced when dependencies are built.
