file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_transient.dir/bench_fig16_transient.cpp.o"
  "CMakeFiles/bench_fig16_transient.dir/bench_fig16_transient.cpp.o.d"
  "bench_fig16_transient"
  "bench_fig16_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
