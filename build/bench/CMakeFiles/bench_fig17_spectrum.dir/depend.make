# Empty dependencies file for bench_fig17_spectrum.
# This may be replaced when dependencies are built.
