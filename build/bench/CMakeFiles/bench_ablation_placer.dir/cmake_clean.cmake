file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_placer.dir/bench_ablation_placer.cpp.o"
  "CMakeFiles/bench_ablation_placer.dir/bench_ablation_placer.cpp.o.d"
  "bench_ablation_placer"
  "bench_ablation_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
