file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_layout.dir/bench_fig13_layout.cpp.o"
  "CMakeFiles/bench_fig13_layout.dir/bench_fig13_layout.cpp.o.d"
  "bench_fig13_layout"
  "bench_fig13_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
