file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_lowamp.dir/bench_fig18_lowamp.cpp.o"
  "CMakeFiles/bench_fig18_lowamp.dir/bench_fig18_lowamp.cpp.o.d"
  "bench_fig18_lowamp"
  "bench_fig18_lowamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_lowamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
