file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timing.dir/bench_ablation_timing.cpp.o"
  "CMakeFiles/bench_ablation_timing.dir/bench_ablation_timing.cpp.o.d"
  "bench_ablation_timing"
  "bench_ablation_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
