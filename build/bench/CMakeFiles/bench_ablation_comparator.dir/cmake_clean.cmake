file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_comparator.dir/bench_ablation_comparator.cpp.o"
  "CMakeFiles/bench_ablation_comparator.dir/bench_ablation_comparator.cpp.o.d"
  "bench_ablation_comparator"
  "bench_ablation_comparator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_comparator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
