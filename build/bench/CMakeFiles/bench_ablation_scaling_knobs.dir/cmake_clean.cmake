file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scaling_knobs.dir/bench_ablation_scaling_knobs.cpp.o"
  "CMakeFiles/bench_ablation_scaling_knobs.dir/bench_ablation_scaling_knobs.cpp.o.d"
  "bench_ablation_scaling_knobs"
  "bench_ablation_scaling_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scaling_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
