# Empty dependencies file for bench_extension_oscillator.
# This may be replaced when dependencies are built.
