file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_oscillator.dir/bench_extension_oscillator.cpp.o"
  "CMakeFiles/bench_extension_oscillator.dir/bench_extension_oscillator.cpp.o.d"
  "bench_extension_oscillator"
  "bench_extension_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
