# Empty dependencies file for bench_extension_backend.
# This may be replaced when dependencies are built.
