file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_backend.dir/bench_extension_backend.cpp.o"
  "CMakeFiles/bench_extension_backend.dir/bench_extension_backend.cpp.o.d"
  "bench_extension_backend"
  "bench_extension_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
