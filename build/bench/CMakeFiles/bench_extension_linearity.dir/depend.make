# Empty dependencies file for bench_extension_linearity.
# This may be replaced when dependencies are built.
