file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_linearity.dir/bench_extension_linearity.cpp.o"
  "CMakeFiles/bench_extension_linearity.dir/bench_extension_linearity.cpp.o.d"
  "bench_extension_linearity"
  "bench_extension_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
