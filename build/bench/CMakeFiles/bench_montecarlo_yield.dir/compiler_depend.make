# Empty compiler generated dependencies file for bench_montecarlo_yield.
# This may be replaced when dependencies are built.
