file(REMOVE_RECURSE
  "CMakeFiles/bench_montecarlo_yield.dir/bench_montecarlo_yield.cpp.o"
  "CMakeFiles/bench_montecarlo_yield.dir/bench_montecarlo_yield.cpp.o.d"
  "bench_montecarlo_yield"
  "bench_montecarlo_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_montecarlo_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
