file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_cli.dir/vcoadc_cli.cpp.o"
  "CMakeFiles/vcoadc_cli.dir/vcoadc_cli.cpp.o.d"
  "vcoadc_cli"
  "vcoadc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
