# Empty compiler generated dependencies file for vcoadc_cli.
# This may be replaced when dependencies are built.
