# Empty compiler generated dependencies file for port_between_nodes.
# This may be replaced when dependencies are built.
