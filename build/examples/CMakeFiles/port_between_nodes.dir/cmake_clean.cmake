file(REMOVE_RECURSE
  "CMakeFiles/port_between_nodes.dir/port_between_nodes.cpp.o"
  "CMakeFiles/port_between_nodes.dir/port_between_nodes.cpp.o.d"
  "port_between_nodes"
  "port_between_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_between_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
