file(REMOVE_RECURSE
  "CMakeFiles/generate_datasheet.dir/generate_datasheet.cpp.o"
  "CMakeFiles/generate_datasheet.dir/generate_datasheet.cpp.o.d"
  "generate_datasheet"
  "generate_datasheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
