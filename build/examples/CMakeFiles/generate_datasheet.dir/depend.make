# Empty dependencies file for generate_datasheet.
# This may be replaced when dependencies are built.
