file(REMOVE_RECURSE
  "CMakeFiles/synthesis_flow_demo.dir/synthesis_flow_demo.cpp.o"
  "CMakeFiles/synthesis_flow_demo.dir/synthesis_flow_demo.cpp.o.d"
  "synthesis_flow_demo"
  "synthesis_flow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_flow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
