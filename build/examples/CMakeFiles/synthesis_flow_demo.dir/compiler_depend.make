# Empty compiler generated dependencies file for synthesis_flow_demo.
# This may be replaced when dependencies are built.
