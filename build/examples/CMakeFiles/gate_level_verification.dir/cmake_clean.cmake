file(REMOVE_RECURSE
  "CMakeFiles/gate_level_verification.dir/gate_level_verification.cpp.o"
  "CMakeFiles/gate_level_verification.dir/gate_level_verification.cpp.o.d"
  "gate_level_verification"
  "gate_level_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_level_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
