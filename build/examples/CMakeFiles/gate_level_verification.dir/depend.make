# Empty dependencies file for gate_level_verification.
# This may be replaced when dependencies are built.
