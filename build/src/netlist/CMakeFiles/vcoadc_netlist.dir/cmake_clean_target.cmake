file(REMOVE_RECURSE
  "libvcoadc_netlist.a"
)
