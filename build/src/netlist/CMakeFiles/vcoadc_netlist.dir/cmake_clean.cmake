file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/equivalence.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/equivalence.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/generator.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/generator.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/lef.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/lef.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/liberty.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/liberty.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/logic_sim.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/logic_sim.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/netlist.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/spice.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/spice.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/vcd.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/vcd.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/verilog_parser.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/verilog_parser.cpp.o.d"
  "CMakeFiles/vcoadc_netlist.dir/verilog_writer.cpp.o"
  "CMakeFiles/vcoadc_netlist.dir/verilog_writer.cpp.o.d"
  "libvcoadc_netlist.a"
  "libvcoadc_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
