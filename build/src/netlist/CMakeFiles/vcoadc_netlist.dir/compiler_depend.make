# Empty compiler generated dependencies file for vcoadc_netlist.
# This may be replaced when dependencies are built.
