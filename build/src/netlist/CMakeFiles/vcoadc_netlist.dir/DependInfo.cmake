
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/equivalence.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/equivalence.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/equivalence.cpp.o.d"
  "/root/repo/src/netlist/generator.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/generator.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/generator.cpp.o.d"
  "/root/repo/src/netlist/lef.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/lef.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/lef.cpp.o.d"
  "/root/repo/src/netlist/liberty.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/liberty.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/liberty.cpp.o.d"
  "/root/repo/src/netlist/logic_sim.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/logic_sim.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/logic_sim.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/spice.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/spice.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/spice.cpp.o.d"
  "/root/repo/src/netlist/vcd.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/vcd.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/vcd.cpp.o.d"
  "/root/repo/src/netlist/verilog_parser.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/verilog_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/verilog_parser.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/netlist/CMakeFiles/vcoadc_netlist.dir/verilog_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/vcoadc_netlist.dir/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
