
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/domino_adc.cpp" "src/baselines/CMakeFiles/vcoadc_baselines.dir/domino_adc.cpp.o" "gcc" "src/baselines/CMakeFiles/vcoadc_baselines.dir/domino_adc.cpp.o.d"
  "/root/repo/src/baselines/opamp_dsm.cpp" "src/baselines/CMakeFiles/vcoadc_baselines.dir/opamp_dsm.cpp.o" "gcc" "src/baselines/CMakeFiles/vcoadc_baselines.dir/opamp_dsm.cpp.o.d"
  "/root/repo/src/baselines/passive_dsm.cpp" "src/baselines/CMakeFiles/vcoadc_baselines.dir/passive_dsm.cpp.o" "gcc" "src/baselines/CMakeFiles/vcoadc_baselines.dir/passive_dsm.cpp.o.d"
  "/root/repo/src/baselines/published.cpp" "src/baselines/CMakeFiles/vcoadc_baselines.dir/published.cpp.o" "gcc" "src/baselines/CMakeFiles/vcoadc_baselines.dir/published.cpp.o.d"
  "/root/repo/src/baselines/stochastic_flash.cpp" "src/baselines/CMakeFiles/vcoadc_baselines.dir/stochastic_flash.cpp.o" "gcc" "src/baselines/CMakeFiles/vcoadc_baselines.dir/stochastic_flash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vcoadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
