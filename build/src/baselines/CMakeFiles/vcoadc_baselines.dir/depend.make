# Empty dependencies file for vcoadc_baselines.
# This may be replaced when dependencies are built.
