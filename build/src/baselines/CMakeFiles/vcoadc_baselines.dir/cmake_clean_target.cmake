file(REMOVE_RECURSE
  "libvcoadc_baselines.a"
)
