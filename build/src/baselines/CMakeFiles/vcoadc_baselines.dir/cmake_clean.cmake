file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_baselines.dir/domino_adc.cpp.o"
  "CMakeFiles/vcoadc_baselines.dir/domino_adc.cpp.o.d"
  "CMakeFiles/vcoadc_baselines.dir/opamp_dsm.cpp.o"
  "CMakeFiles/vcoadc_baselines.dir/opamp_dsm.cpp.o.d"
  "CMakeFiles/vcoadc_baselines.dir/passive_dsm.cpp.o"
  "CMakeFiles/vcoadc_baselines.dir/passive_dsm.cpp.o.d"
  "CMakeFiles/vcoadc_baselines.dir/published.cpp.o"
  "CMakeFiles/vcoadc_baselines.dir/published.cpp.o.d"
  "CMakeFiles/vcoadc_baselines.dir/stochastic_flash.cpp.o"
  "CMakeFiles/vcoadc_baselines.dir/stochastic_flash.cpp.o.d"
  "libvcoadc_baselines.a"
  "libvcoadc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
