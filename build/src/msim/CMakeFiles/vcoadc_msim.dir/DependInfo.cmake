
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msim/comparator.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/comparator.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/comparator.cpp.o.d"
  "/root/repo/src/msim/modulator.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/modulator.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/modulator.cpp.o.d"
  "/root/repo/src/msim/noise.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/noise.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/noise.cpp.o.d"
  "/root/repo/src/msim/phase_noise.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/phase_noise.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/phase_noise.cpp.o.d"
  "/root/repo/src/msim/resistor_dac.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/resistor_dac.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/resistor_dac.cpp.o.d"
  "/root/repo/src/msim/ring_vco.cpp" "src/msim/CMakeFiles/vcoadc_msim.dir/ring_vco.cpp.o" "gcc" "src/msim/CMakeFiles/vcoadc_msim.dir/ring_vco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vcoadc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
