file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_msim.dir/comparator.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/comparator.cpp.o.d"
  "CMakeFiles/vcoadc_msim.dir/modulator.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/modulator.cpp.o.d"
  "CMakeFiles/vcoadc_msim.dir/noise.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/noise.cpp.o.d"
  "CMakeFiles/vcoadc_msim.dir/phase_noise.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/phase_noise.cpp.o.d"
  "CMakeFiles/vcoadc_msim.dir/resistor_dac.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/resistor_dac.cpp.o.d"
  "CMakeFiles/vcoadc_msim.dir/ring_vco.cpp.o"
  "CMakeFiles/vcoadc_msim.dir/ring_vco.cpp.o.d"
  "libvcoadc_msim.a"
  "libvcoadc_msim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_msim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
