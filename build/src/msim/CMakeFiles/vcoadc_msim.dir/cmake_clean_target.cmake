file(REMOVE_RECURSE
  "libvcoadc_msim.a"
)
