# Empty dependencies file for vcoadc_msim.
# This may be replaced when dependencies are built.
