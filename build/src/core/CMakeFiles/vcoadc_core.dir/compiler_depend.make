# Empty compiler generated dependencies file for vcoadc_core.
# This may be replaced when dependencies are built.
