file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_core.dir/adc.cpp.o"
  "CMakeFiles/vcoadc_core.dir/adc.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/adc_spec.cpp.o"
  "CMakeFiles/vcoadc_core.dir/adc_spec.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/backend.cpp.o"
  "CMakeFiles/vcoadc_core.dir/backend.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/datasheet.cpp.o"
  "CMakeFiles/vcoadc_core.dir/datasheet.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/linearity.cpp.o"
  "CMakeFiles/vcoadc_core.dir/linearity.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/migration.cpp.o"
  "CMakeFiles/vcoadc_core.dir/migration.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/monte_carlo.cpp.o"
  "CMakeFiles/vcoadc_core.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/optimizer.cpp.o"
  "CMakeFiles/vcoadc_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/vcoadc_core.dir/power_model.cpp.o"
  "CMakeFiles/vcoadc_core.dir/power_model.cpp.o.d"
  "libvcoadc_core.a"
  "libvcoadc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
