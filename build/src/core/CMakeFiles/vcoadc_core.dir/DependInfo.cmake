
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adc.cpp" "src/core/CMakeFiles/vcoadc_core.dir/adc.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/adc.cpp.o.d"
  "/root/repo/src/core/adc_spec.cpp" "src/core/CMakeFiles/vcoadc_core.dir/adc_spec.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/adc_spec.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/vcoadc_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/datasheet.cpp" "src/core/CMakeFiles/vcoadc_core.dir/datasheet.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/datasheet.cpp.o.d"
  "/root/repo/src/core/linearity.cpp" "src/core/CMakeFiles/vcoadc_core.dir/linearity.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/linearity.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/vcoadc_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/monte_carlo.cpp" "src/core/CMakeFiles/vcoadc_core.dir/monte_carlo.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/vcoadc_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/power_model.cpp" "src/core/CMakeFiles/vcoadc_core.dir/power_model.cpp.o" "gcc" "src/core/CMakeFiles/vcoadc_core.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vcoadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/msim/CMakeFiles/vcoadc_msim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vcoadc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vcoadc_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
