file(REMOVE_RECURSE
  "libvcoadc_core.a"
)
