file(REMOVE_RECURSE
  "libvcoadc_dsp.a"
)
