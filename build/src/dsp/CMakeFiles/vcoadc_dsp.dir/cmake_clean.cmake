file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_dsp.dir/decimator.cpp.o"
  "CMakeFiles/vcoadc_dsp.dir/decimator.cpp.o.d"
  "CMakeFiles/vcoadc_dsp.dir/fft.cpp.o"
  "CMakeFiles/vcoadc_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/vcoadc_dsp.dir/signal_gen.cpp.o"
  "CMakeFiles/vcoadc_dsp.dir/signal_gen.cpp.o.d"
  "CMakeFiles/vcoadc_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/vcoadc_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/vcoadc_dsp.dir/window.cpp.o"
  "CMakeFiles/vcoadc_dsp.dir/window.cpp.o.d"
  "libvcoadc_dsp.a"
  "libvcoadc_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
