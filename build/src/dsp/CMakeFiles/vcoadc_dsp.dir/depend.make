# Empty dependencies file for vcoadc_dsp.
# This may be replaced when dependencies are built.
