file(REMOVE_RECURSE
  "libvcoadc_tech.a"
)
