# Empty dependencies file for vcoadc_tech.
# This may be replaced when dependencies are built.
