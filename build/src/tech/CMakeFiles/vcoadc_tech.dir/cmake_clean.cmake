file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_tech.dir/scaling_model.cpp.o"
  "CMakeFiles/vcoadc_tech.dir/scaling_model.cpp.o.d"
  "CMakeFiles/vcoadc_tech.dir/tech_node.cpp.o"
  "CMakeFiles/vcoadc_tech.dir/tech_node.cpp.o.d"
  "libvcoadc_tech.a"
  "libvcoadc_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
