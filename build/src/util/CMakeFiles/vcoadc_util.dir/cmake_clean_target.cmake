file(REMOVE_RECURSE
  "libvcoadc_util.a"
)
