file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/vcoadc_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/vcoadc_util.dir/cli.cpp.o"
  "CMakeFiles/vcoadc_util.dir/cli.cpp.o.d"
  "CMakeFiles/vcoadc_util.dir/rng.cpp.o"
  "CMakeFiles/vcoadc_util.dir/rng.cpp.o.d"
  "CMakeFiles/vcoadc_util.dir/strings.cpp.o"
  "CMakeFiles/vcoadc_util.dir/strings.cpp.o.d"
  "CMakeFiles/vcoadc_util.dir/table.cpp.o"
  "CMakeFiles/vcoadc_util.dir/table.cpp.o.d"
  "CMakeFiles/vcoadc_util.dir/units.cpp.o"
  "CMakeFiles/vcoadc_util.dir/units.cpp.o.d"
  "libvcoadc_util.a"
  "libvcoadc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
