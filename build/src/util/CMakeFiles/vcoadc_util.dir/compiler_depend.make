# Empty compiler generated dependencies file for vcoadc_util.
# This may be replaced when dependencies are built.
