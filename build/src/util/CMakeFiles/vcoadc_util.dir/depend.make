# Empty dependencies file for vcoadc_util.
# This may be replaced when dependencies are built.
