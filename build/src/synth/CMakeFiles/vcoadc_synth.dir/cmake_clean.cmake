file(REMOVE_RECURSE
  "CMakeFiles/vcoadc_synth.dir/drc.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/drc.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/floorplan.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/floorplan.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/gdsii.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/gdsii.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/geometry.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/geometry.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/layout.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/layout.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/maze_router.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/maze_router.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/placer.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/placer.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/placer_quadratic.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/placer_quadratic.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/power_grid.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/power_grid.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/router.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/router.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/sta.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/sta.cpp.o.d"
  "CMakeFiles/vcoadc_synth.dir/synthesis_flow.cpp.o"
  "CMakeFiles/vcoadc_synth.dir/synthesis_flow.cpp.o.d"
  "libvcoadc_synth.a"
  "libvcoadc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcoadc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
