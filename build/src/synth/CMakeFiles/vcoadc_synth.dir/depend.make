# Empty dependencies file for vcoadc_synth.
# This may be replaced when dependencies are built.
