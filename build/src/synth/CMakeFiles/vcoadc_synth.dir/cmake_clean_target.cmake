file(REMOVE_RECURSE
  "libvcoadc_synth.a"
)
