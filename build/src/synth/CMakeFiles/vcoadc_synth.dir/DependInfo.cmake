
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/drc.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/drc.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/drc.cpp.o.d"
  "/root/repo/src/synth/floorplan.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/floorplan.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/floorplan.cpp.o.d"
  "/root/repo/src/synth/gdsii.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/gdsii.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/gdsii.cpp.o.d"
  "/root/repo/src/synth/geometry.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/geometry.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/geometry.cpp.o.d"
  "/root/repo/src/synth/layout.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/layout.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/layout.cpp.o.d"
  "/root/repo/src/synth/maze_router.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/maze_router.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/maze_router.cpp.o.d"
  "/root/repo/src/synth/placer.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/placer.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/placer.cpp.o.d"
  "/root/repo/src/synth/placer_quadratic.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/placer_quadratic.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/placer_quadratic.cpp.o.d"
  "/root/repo/src/synth/power_grid.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/power_grid.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/power_grid.cpp.o.d"
  "/root/repo/src/synth/router.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/router.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/router.cpp.o.d"
  "/root/repo/src/synth/sta.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/sta.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/sta.cpp.o.d"
  "/root/repo/src/synth/synthesis_flow.cpp" "src/synth/CMakeFiles/vcoadc_synth.dir/synthesis_flow.cpp.o" "gcc" "src/synth/CMakeFiles/vcoadc_synth.dir/synthesis_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vcoadc_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
