# Empty compiler generated dependencies file for vcoadc_tests.
# This may be replaced when dependencies are built.
