
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backend_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/backend_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/backend_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/datasheet_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/datasheet_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/datasheet_test.cpp.o.d"
  "/root/repo/tests/dsp_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/dsp_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/dsp_test.cpp.o.d"
  "/root/repo/tests/equivalence_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/extended_msim_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/extended_msim_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/extended_msim_test.cpp.o.d"
  "/root/repo/tests/formats_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/formats_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/formats_test.cpp.o.d"
  "/root/repo/tests/linearity_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/linearity_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/linearity_test.cpp.o.d"
  "/root/repo/tests/logic_sim_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/logic_sim_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/logic_sim_test.cpp.o.d"
  "/root/repo/tests/maze_router_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/maze_router_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/maze_router_test.cpp.o.d"
  "/root/repo/tests/monte_carlo_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/monte_carlo_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/monte_carlo_test.cpp.o.d"
  "/root/repo/tests/msim_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/msim_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/msim_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/optimizer_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/optimizer_test.cpp.o.d"
  "/root/repo/tests/phase_noise_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/phase_noise_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/phase_noise_test.cpp.o.d"
  "/root/repo/tests/placer_quadratic_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/placer_quadratic_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/placer_quadratic_test.cpp.o.d"
  "/root/repo/tests/power_grid_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/power_grid_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/power_grid_test.cpp.o.d"
  "/root/repo/tests/property_dsp_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/property_dsp_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/property_dsp_test.cpp.o.d"
  "/root/repo/tests/property_formats_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/property_formats_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/property_formats_test.cpp.o.d"
  "/root/repo/tests/property_system_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/property_system_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/property_system_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sta_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/sta_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/sta_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/tech_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/tech_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/tech_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/vcd_spice_test.cpp" "tests/CMakeFiles/vcoadc_tests.dir/vcd_spice_test.cpp.o" "gcc" "tests/CMakeFiles/vcoadc_tests.dir/vcd_spice_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcoadc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/vcoadc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vcoadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/msim/CMakeFiles/vcoadc_msim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vcoadc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vcoadc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vcoadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vcoadc_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
