// Generates the datasheet of the paper's two parts (Table 3's rows) via
// the complete flow: netlist -> layout -> routing -> timing -> power grid
// -> behavioral simulation -> Monte Carlo.
#include <cstdio>

#include "core/datasheet.h"

int main() {
  using namespace vcoadc;
  for (const auto& spec :
       {core::AdcSpec::paper_40nm(), core::AdcSpec::paper_180nm()}) {
    core::DatasheetOptions opts;
    opts.n_samples = 1 << 14;
    opts.mc_runs = 5;
    const core::Datasheet ds = core::generate_datasheet(spec, opts);
    std::printf("%s\n", ds.render().c_str());
  }
  return 0;
}
