// Walks the complete Fig. 9 layout-synthesis flow step by step, with every
// intermediate artifact printed or written to disk:
//
//   1. HDL generation: build the gate-level netlist, dump it as structural
//      Verilog (Tables 1/2 shape), parse it back and re-validate.
//   2. Standard-cell library modification: show the resistor cells added to
//      the digital library (Fig. 11).
//   3. Floorplan generation: power domains / component groups -> regions.
//   4. APR: place, estimate routing, run DRC.
//   5. Resulting layout: ASCII rendering + GDS-like text export.
#include <cstdio>
#include <fstream>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "netlist/generator.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "synth/synthesis_flow.h"
#include "util/units.h"

int main() {
  using namespace vcoadc;
  const core::AdcSpec spec = core::AdcSpec::paper_40nm();
  core::AdcDesign adc(spec);

  // --- 1. HDL generation -------------------------------------------------
  const std::string verilog = netlist::write_verilog(adc.netlist());
  {
    std::ofstream f("adc_top.v");
    f << verilog;
  }
  std::printf("step 1: HDL generation -> adc_top.v (%zu bytes)\n",
              verilog.size());
  std::printf("        comparator module (paper Table 1):\n%s\n",
              netlist::write_module_verilog(adc.netlist(),
                                            adc.netlist().at("comparator"))
                  .c_str());

  // Round-trip through the parser, as a schematic-export flow would.
  netlist::Design reparsed(&adc.library());
  const auto parse = netlist::parse_verilog(verilog, reparsed);
  reparsed.set_top(adc.netlist().top());
  std::printf("        parse-back: %s, %zu validation problems\n",
              parse.ok ? "ok" : parse.error.c_str(),
              reparsed.validate().size());

  // --- 2. Standard-cell library modification ------------------------------
  std::printf("\nstep 2: library '%s' with custom resistor cells (Fig. 11):\n",
              adc.library().name().c_str());
  for (const auto& cell : adc.library().cells()) {
    if (cell.is_resistor) {
      std::printf("        %s: %.0f ohm, %.2f x %.2f um (digital row height)\n",
                  cell.name.c_str(), cell.resistance_ohms, cell.width_m * 1e6,
                  cell.height_m * 1e6);
    }
  }

  // --- 3+4+5. Floorplan, APR, layout --------------------------------------
  const auto res = synth::synthesize(reparsed, {});
  std::printf("\nstep 3: floorplan specification:\n%s",
              res.floorplan_spec.c_str());
  std::printf("\nstep 4: APR: HPWL %.1f um, max congestion %.1f, DRC %s\n",
              res.routing.total_hpwl_m * 1e6,
              res.routing.congestion.max_demand,
              res.drc.clean() ? "clean" : "VIOLATIONS");
  std::printf("\nstep 5: resulting layout (%.4f mm^2):\n%s",
              res.stats.die_area_m2 * 1e6, res.layout->render_ascii(90).c_str());
  {
    std::ofstream f("adc_top.gds.txt");
    f << res.layout->write_gds_text("adc_top");
  }
  std::printf("GDS-like text stream written to adc_top.gds.txt\n");
  return 0;
}
