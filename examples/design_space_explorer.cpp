// Design-space exploration for an IoT sensor-node ADC.
//
// Scenario (the paper's motivating application class, Sec. 1: "ultra-low-
// power ... ADCs ... in increasingly high demand by IoT, WSN, biomedical
// implants"): we need >= 60 dB SNDR in a 2 MHz band at 40 nm, minimum
// power. The architecture's knobs (slices, clock) trade resolution against
// power; this example sweeps them and picks the cheapest point meeting the
// target - exactly the "easy adaptation to different specifications"
// workflow of Sec. 2.2.
//
// The sweep points are independent, so they fan out across the parallel
// evaluation engine (core::BatchRunner); results come back ordered by grid
// index, so the table and the selected design are identical at any thread
// count.
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "core/adc.h"
#include "core/batch.h"
#include "core/flow.h"
#include "core/optimizer.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace vcoadc;
  constexpr double kTargetSndrDb = 60.0;
  constexpr double kBandwidthHz = 2e6;

  std::printf("goal: >= %.0f dB SNDR in %.0f MHz at 40 nm, minimum power\n\n",
              kTargetSndrDb, kBandwidthHz / 1e6);

  std::vector<core::AdcSpec> grid;
  for (int slices : {4, 8, 16}) {
    for (double fs : {150e6, 300e6, 600e6}) {
      core::AdcSpec spec = core::AdcSpec::paper_40nm();
      spec.num_slices = slices;
      spec.fs_hz = fs;
      spec.bandwidth_hz = kBandwidthHz;
      grid.push_back(spec);
    }
  }

  // Every sweep point runs as a SimRun stage of the flow graph: points
  // sharing a netlist (same slices, different clock) build it once, and a
  // re-run of the explorer is served from the artifact cache.
  core::ExecContext ctx;
  core::Flow flow(ctx);
  core::BatchRunner runner(ctx);  // threads = hardware concurrency
  const auto evals =
      runner.map(grid.size(), [&](std::size_t i, std::uint64_t) {
        core::SimulationOptions opts;
        opts.n_samples = 1 << 14;
        opts.fin_target_hz = kBandwidthHz / 5.0;
        return *flow.sim_run(grid[i], opts);
      });
  const core::BatchStats& stats = runner.last_stats();

  util::Table t("design space sweep");
  t.set_header({"slices", "fs [MHz]", "OSR", "SNDR [dB]", "power [mW]",
                "FOM [fJ/conv]", "meets spec"});

  core::AdcSpec best;
  double best_power = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::AdcSpec& spec = grid[i];
    const core::RunResult& res = evals[i];
    const bool ok = res.sndr.sndr_db >= kTargetSndrDb;
    t.add_row({std::to_string(spec.num_slices),
               util::fixed_format(spec.fs_hz / 1e6, 0),
               util::fixed_format(spec.osr(), 0),
               util::fixed_format(res.sndr.sndr_db, 1),
               util::fixed_format(res.power.total_w() * 1e3, 3),
               util::fixed_format(res.fom_fj, 0), ok ? "yes" : "no"});
    if (ok && res.power.total_w() < best_power) {
      best_power = res.power.total_w();
      best = spec;
      found = true;
    }
  }
  t.print(std::cout);
  std::printf("\nswept %zu points in %.2f s on %d threads "
              "(utilization %.0f%%)\n",
              grid.size(), stats.wall_s, stats.threads,
              stats.utilization * 100.0);

  if (found) {
    std::printf("\nselected design: %s\n", best.describe().c_str());
    std::printf("power: %s\n", util::si_format(best_power, "W").c_str());
    // Hand the winner to the synthesis flow.
    const auto layout = flow.synthesis(best);
    std::printf("synthesized: %.4f mm^2, DRC %s\n",
                layout->stats.die_area_m2 * 1e6,
                layout->drc.clean() ? "clean" : "VIOLATIONS");
  } else {
    std::printf("\nno design point met the spec - widen the sweep.\n");
  }

  // The same search, via the library's optimizer (with realizability
  // pruning and a mismatch margin baked in).
  core::OptimizeTarget target;
  target.min_sndr_db = kTargetSndrDb;
  target.bandwidth_hz = kBandwidthHz;
  core::OptimizeOptions oopts;
  oopts.n_samples = 1 << 13;
  oopts.exec = ctx;
  const auto opt = core::optimize_spec(target, oopts);
  if (opt.best.has_value()) {
    std::printf("\noptimizer pick: %s -> %.1f dB at %s "
                "(%zu candidates evaluated)\n",
                opt.best->describe().c_str(), opt.best_sndr_db,
                util::si_format(opt.best_power_w, "W").c_str(),
                opt.evaluated.size());
  }
  return 0;
}
