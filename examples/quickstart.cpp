// Quickstart: specify an ADC, simulate it, and read the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/adc.h"
#include "util/units.h"

int main() {
  using namespace vcoadc;

  // 1. Pick a design point. paper_40nm() is Table 3's first row; every knob
  //    can be overridden (node, slices, clock, bandwidth, loop gain).
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  std::printf("design: %s\n", spec.describe().c_str());

  // 2. Instantiate. This derives the behavioral model AND the gate-level
  //    netlist (Tables 1/2 of the paper) from the same spec.
  core::AdcDesign adc(spec);
  std::printf("netlist: %d digital gates, %d resistor cells\n",
              adc.netlist().stats().digital_gates,
              adc.netlist().stats().resistors);

  // 3. Simulate a -3 dBFS, ~1 MHz tone and analyze the spectrum.
  core::SimulationOptions opts;
  opts.n_samples = 1 << 15;
  opts.fin_target_hz = 1e6;
  const core::RunResult res = adc.simulate(opts);

  std::printf("\nresults:\n");
  std::printf("  input tone     %s at %.1f dBFS\n",
              util::si_format(res.fin_hz, "Hz").c_str(),
              res.sndr.fundamental_dbfs);
  std::printf("  SNDR           %.1f dB in %s\n", res.sndr.sndr_db,
              util::si_format(spec.bandwidth_hz, "Hz").c_str());
  std::printf("  ENOB           %.2f bits\n", res.sndr.enob);
  std::printf("  noise shaping  %.1f dB/dec\n", res.shaping.db_per_decade);
  std::printf("  power          %s (digital %.0f%%)\n",
              util::si_format(res.power.total_w(), "W").c_str(),
              res.power.digital_fraction() * 100);
  std::printf("  Walden FOM     %.0f fJ/conv-step\n", res.fom_fj);

  // 4. Synthesize the layout (Fig. 9 flow) and check it is DRC clean.
  const auto layout = adc.synthesize();
  std::printf("\nlayout: %.4f mm^2, %zu DRC violations\n",
              layout.stats.die_area_m2 * 1e6, layout.drc.violations.size());
  return 0;
}
