// Gate-level verification of the generated netlist - the sign-off a
// schematic-to-HDL flow (Sec. 3.2) runs before handing the design to APR:
//
//   1. simulate the Table 1 comparator netlist through a few clock cycles
//      and check decide/latch behaviour,
//   2. kick the distributed ring (Fig. 5) and verify it oscillates at the
//      period its stage delays predict,
//   3. dump everything as a VCD trace for a waveform viewer,
//   4. export the transistor-level SPICE deck of the same design.
#include <cstdio>
#include <cmath>
#include <fstream>

#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/logic_sim.h"
#include "netlist/spice.h"
#include "netlist/vcd.h"
#include "tech/tech_node.h"
#include "util/units.h"

int main() {
  using namespace vcoadc;
  const tech::TechNode node = tech::TechDatabase::standard().at(40);
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::add_resistor_cells(lib, node);
  netlist::GeneratorConfig cfg;
  cfg.num_slices = 4;
  netlist::Design design = netlist::build_adc_design(lib, cfg);

  // --- 1. comparator behaviour --------------------------------------------
  {
    netlist::Design cmp = netlist::build_adc_design(lib, cfg);
    cmp.set_top("comparator");
    netlist::LogicSim sim(cmp, node);
    netlist::VcdWriter vcd;
    vcd.watch_all(sim, {"CLK", "INP", "INM", "OUTP", "OUTM", "Q", "QB"});

    std::printf("comparator (Table 1) sequence:\n");
    auto cycle = [&](netlist::Logic inp, netlist::Logic inm) {
      sim.set("INP", inp);
      sim.set("INM", inm);
      sim.set("CLK", netlist::Logic::k1);  // reset
      sim.settle(sim.now() + 1e-9);
      sim.set("CLK", netlist::Logic::k0);  // decide
      sim.settle(sim.now() + 1e-9);
      std::printf("  INP=%c INM=%c -> Q=%c QB=%c\n", to_char(inp),
                  to_char(inm), to_char(sim.get("Q")),
                  to_char(sim.get("QB")));
    };
    cycle(netlist::Logic::k1, netlist::Logic::k0);
    cycle(netlist::Logic::k0, netlist::Logic::k1);
    cycle(netlist::Logic::k1, netlist::Logic::k0);
    std::ofstream f("comparator.vcd");
    f << vcd.render("comparator");
    std::printf("  -> comparator.vcd (%d signals, %zu changes)\n",
                vcd.num_signals(), vcd.num_changes());
  }

  // --- 2. ring oscillation -------------------------------------------------
  {
    netlist::LogicSim sim(design, node);
    for (int i = 0; i < cfg.num_slices; ++i) {
      sim.set("R1P_" + std::to_string(i), netlist::Logic::k0);
      sim.set("R1N_" + std::to_string(i), netlist::Logic::k1);
    }
    std::vector<double> edges;
    sim.on_change("R1P_0",
                  [&](double t, netlist::Logic) { edges.push_back(t); });
    sim.run_until(3e-10);
    double period = 0;
    if (edges.size() > 4) {
      period = (edges.back() - edges[edges.size() - 5]) / 2.0;
    }
    const double expected =
        2.0 * cfg.num_slices * (node.fo4_delay_s / 4.0 / std::sqrt(2.0));
    std::printf("\nring check: %zu edges in 300 ps, period %s "
                "(stage-delay prediction %s)\n",
                edges.size(), util::si_format(period, "s").c_str(),
                util::si_format(expected, "s").c_str());
  }

  // --- 3./4. artifacts ------------------------------------------------------
  const std::string deck = netlist::write_spice(design, node);
  std::ofstream sp("adc_top.sp");
  sp << deck;
  int fets = 0;
  for (const auto& mod : design.modules()) {
    for (const auto& inst : mod.instances()) {
      if (const auto* cell = lib.find(inst.master)) {
        fets += netlist::spice_transistor_count(*cell);
      }
    }
  }
  std::printf("\nSPICE deck -> adc_top.sp (%zu bytes; ~%d FETs across "
              "unique module bodies)\n", deck.size(), fets);
  return 0;
}
