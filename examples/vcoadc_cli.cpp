// vcoadc_cli: command-line front end of the generator.
//
//   vcoadc_cli <command> [options]
//
//   commands:
//     simulate     behavioral run: SNDR/ENOB/power/FOM for a spec
//     synthesize   layout synthesis: area/DRC/routing, writes artifacts
//     datasheet    full-flow datasheet (--amp-sweep adds the SNDR-vs-level
//                  curve, batched through the SIMD engine)
//     montecarlo   mismatch Monte Carlo: SNDR distribution over --runs draws
//     corners      PVT corner sweep: SNDR/power at the canonical six corners
//     export       write verilog/spice/lef/liberty/gds/fp artifacts
//     emit-verilog emitted-HDL flow stage: render the netlist to Verilog,
//                  re-parse it, assert structural equivalence, write the
//                  sign-off text (the artifact of record) to --out
//     gatesim      gate-level sign-off: event-driven simulation of the
//                  re-parsed emitted HDL (comparator truth table, ring
//                  period, slice replay) cross-checked bit-for-bit against
//                  the behavioral engine through the shared digital backend
//     serve        long-running evaluation service: newline-delimited JSON
//                  requests on stdin, one JSON response per line on stdout
//                  (spec flags are ignored; each request carries its own);
//                  with --listen it serves many concurrent socket clients
//                  from the same warm context instead of stdin
//     client       connects to a serving process (--connect=<endpoint>),
//                  forwards NDJSON requests from stdin and prints the
//                  responses — the scriptable counterpart of --listen
//
//   options (all commands):
//     --node=40         technology node [nm]
//     --slices=16       number of slices
//     --fs=750e6        modulator clock [Hz]
//     --bw=5e6          signal bandwidth [Hz]
//     --samples=16384   capture length for simulate/datasheet/montecarlo/
//                       corners
//     --runs=20         Monte-Carlo draw count (montecarlo)
//     --seed0=1000      seed of draw 0; draw i uses seed0 + i (montecarlo)
//     --batch-width=0   SIMD lane width for the batched transient engine
//                       (montecarlo/corners/datasheet): 0 = host-preferred,
//                       1 = scalar, 2/4/8 = forced width; results are
//                       bit-identical at every setting
//     --amp-sweep=0     SNDR-vs-amplitude sweep points (datasheet); 0 = off
//     --top=<name>      top module for gatesim (default: the emitted top)
//     --ring-tol=0.25   relative ring-period tolerance vs the stage-delay
//                       prediction (gatesim)
//     --out=.           artifact output directory
//     --threads=0       worker threads (0 = hardware concurrency)
//     --store=<dir>     persistent artifact store: stages load cached
//                       artifacts written by earlier processes and save
//                       their own (serve shares one store across requests)
//     --store-max-bytes=<n>  size bound for --store: LRU garbage
//                       collection over record mtimes keeps the directory
//                       at or below n bytes (one-shot commands gc after
//                       the run; serve gc's after any request that wrote)
//     --listen=<ep>     serve transport: tcp:<port> (loopback) or a unix
//                       socket path; many concurrent clients multiplex
//                       onto the one warm context. SIGINT/SIGTERM drain
//                       in-flight requests and shut down cleanly
//     --connect=<ep>    client: endpoint of a serving process
//     --trace[=json]    print per-stage timing after the run (tree or JSONL;
//                       serve embeds a "trace" array per response, json only)
//     --cache-stats     print artifact-cache counters after the run (serve
//                       embeds a per-request "cache" delta object)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/adc.h"
#include "core/artifact_store.h"
#include "core/datasheet.h"
#include "core/eval.h"
#include "core/flow.h"
#include "core/serve_loop.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/spice.h"
#include "netlist/verilog_writer.h"
#include "synth/gdsii.h"
#include "util/cli.h"
#include "util/net.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/trace.h"
#include "util/units.h"

using namespace vcoadc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <simulate|synthesize|datasheet|montecarlo|corners|"
               "export|emit-verilog|gatesim|serve|client> "
               "[--node=40] [--slices=16] [--fs=750e6] [--bw=5e6] "
               "[--samples=16384] [--runs=20] [--seed0=1000] "
               "[--batch-width=0] [--amp-sweep=0] [--top=<module>] "
               "[--ring-tol=0.25] [--out=.] [--threads=0] "
               "[--store=<dir>] [--store-max-bytes=<n>] "
               "[--listen=<tcp:port|unix-path>] [--connect=<endpoint>] "
               "[--trace[=json]] [--cache-stats]\n",
               prog);
  return 2;
}

/// Structured-diagnostics epilogue: renders everything the flow collected
/// ("[severity] stage item: reason" per line) and returns the exit code.
int fail_with_diags(const util::DiagSink& sink) {
  std::fprintf(stderr, "error: flow rejected the input\n%s",
               sink.render().c_str());
  return 1;
}

/// --trace / --cache-stats epilogue, shared by every command. `store` is
/// null when --store was not given.
void print_flow_stats(const util::ArgParser& args, const util::Trace& trace,
                      const core::ArtifactCache& cache,
                      const core::ArtifactStore* store) {
  if (args.has("trace")) {
    if (args.get("trace") == "json") {
      std::printf("%s", trace.render_jsonl().c_str());
    } else {
      std::printf("-- stage trace --\n%s", trace.render_tree().c_str());
    }
  }
  if (args.has("cache-stats")) {
    std::printf("-- simd --\n  %s\n",
                util::simd::runtime_summary().c_str());
    const core::ArtifactCacheStats st = cache.stats();
    std::printf(
        "-- artifact cache --\n"
        "  hits %llu | misses %llu | hit rate %.1f%% | evictions %llu\n"
        "  resident %zu entries, ~%.1f KiB\n",
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0,
        static_cast<unsigned long long>(st.evictions), st.entries,
        static_cast<double>(st.bytes) / 1024.0);
    if (store != nullptr) {
      const core::ArtifactStoreStats ss = store->stats();
      std::printf(
          "-- artifact store --\n"
          "  hits %llu | misses %llu (absent %llu, corrupt %llu, "
          "version skew %llu)\n"
          "  writes %llu (%llu failed) | read %.1f KiB | wrote %.1f KiB\n"
          "  gc: evictions %llu | reclaimed %.1f KiB | tmp swept %llu\n",
          static_cast<unsigned long long>(ss.hits),
          static_cast<unsigned long long>(ss.misses),
          static_cast<unsigned long long>(ss.absent),
          static_cast<unsigned long long>(ss.corrupt),
          static_cast<unsigned long long>(ss.version_skew),
          static_cast<unsigned long long>(ss.writes),
          static_cast<unsigned long long>(ss.write_failures),
          static_cast<double>(ss.bytes_read) / 1024.0,
          static_cast<double>(ss.bytes_written) / 1024.0,
          static_cast<unsigned long long>(ss.evictions),
          static_cast<double>(ss.gc_bytes_reclaimed) / 1024.0,
          static_cast<unsigned long long>(ss.tmp_swept));
    }
  }
}

/// The evaluation service: NDJSON requests in, one response line each out
/// (nothing else is ever written to the response stream — it stays
/// machine-parseable). One warm ExecContext is shared by every request, so
/// repeated specs hit the in-process cache; with --store the stage
/// artifacts also persist across serve processes. Transports (see
/// core/serve_loop.h for the shared dispatch path):
///   default   — stdin/stdout, one client (the original mode);
///   --listen  — tcp:<port> or a unix socket path, many concurrent
///               clients, per-connection request ordering preserved,
///               SIGINT/SIGTERM drain in-flight requests and exit.
int run_serve(const util::ArgParser& args, core::ExecContext ctx) {
  util::net::ignore_sigpipe();  // a dead client must fail a write, not us
  core::ArtifactCache cache(512);
  ctx.cache = &cache;
  core::EvalServeOptions eopts;
  eopts.cache_stats = args.has("cache-stats");
  eopts.trace = args.has("trace") && args.get("trace") == "json";
  eopts.store_max_bytes = static_cast<std::uint64_t>(
      args.get_double("store-max-bytes", 0));
  const core::ServeHandler handler = core::make_eval_handler(ctx, eopts);

  if (args.has("listen")) {
    const util::net::Endpoint ep = util::net::parse_endpoint(
        args.get("listen"));
    std::string err;
    util::net::Listener listener = util::net::Listener::listen(ep, &err);
    if (!listener.valid()) {
      std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                   args.get("listen").c_str(), err.c_str());
      return 1;
    }
    core::SocketServeOptions sopts;
    sopts.stop = core::install_shutdown_signal_handlers();
    std::fprintf(stderr, "serving on %s\n",
                 ep.is_tcp ? util::format("tcp:127.0.0.1:%d",
                                          listener.port()).c_str()
                           : ep.unix_path.c_str());
    const core::ServeResult res = core::serve_socket(listener, handler,
                                                     sopts);
    std::fprintf(stderr,
                 "served %llu requests over %llu connections "
                 "(%llu dropped)\n",
                 static_cast<unsigned long long>(res.stats.requests),
                 static_cast<unsigned long long>(
                     res.stats.connections_accepted),
                 static_cast<unsigned long long>(
                     res.stats.connections_dropped));
    if (!res.clean) {
      std::fprintf(stderr, "error: %s\n", res.error.c_str());
      return 1;
    }
    return 0;
  }

  const core::ServeResult res = core::serve_stdio(stdin, stdout, handler);
  if (!res.clean) {
    // The reader of our stdout went away (closed pipe): responses can no
    // longer be delivered, so exit cleanly with a diagnostic instead of
    // evaluating into the void or dying on SIGPIPE.
    std::fprintf(stderr, "error: serve stopped: %s\n", res.error.c_str());
    return 1;
  }
  return 0;
}

/// Scriptable socket client: forwards NDJSON request lines from stdin to
/// a serving process and prints each response line to stdout. One request
/// in flight at a time, so responses print in request order.
int run_client(const util::ArgParser& args) {
  util::net::ignore_sigpipe();
  const util::net::Endpoint ep = util::net::parse_endpoint(
      args.get("connect"));
  std::string err;
  util::net::Connection conn = util::net::dial(ep, &err);
  if (!conn.valid()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!conn.write_line(line)) {
      std::fprintf(stderr, "error: request write failed (server gone?)\n");
      return 1;
    }
    std::string resp;
    if (conn.read_line(&resp) != util::net::Connection::ReadStatus::kLine) {
      std::fprintf(stderr, "error: connection closed before a response\n");
      return 1;
    }
    std::printf("%s\n", resp.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto unknown = args.unknown_flags({"node", "slices", "fs", "bw",
                                           "samples", "runs", "seed0",
                                           "batch-width", "amp-sweep", "top",
                                           "ring-tol", "out", "threads",
                                           "store", "store-max-bytes",
                                           "listen", "connect", "trace",
                                           "cache-stats"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", unknown[0].c_str());
    return usage(argv[0]);
  }
  if (args.positional().size() != 1) return usage(argv[0]);
  const std::string cmd = args.positional()[0];

  // client is pure transport — no spec, no flow, no store of its own.
  if (cmd == "client") return run_client(args);

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = args.get_double("node", 40);
  spec.num_slices = args.get_int("slices", 16);
  spec.fs_hz = args.get_double("fs", 750e6);
  spec.bandwidth_hz = args.get_double("bw", 5e6);
  const long long samples_arg = args.get_int("samples", 16384);
  const auto n_samples = samples_arg > 0
                             ? static_cast<std::size_t>(samples_arg)
                             : std::size_t{0};
  const std::string out_dir = args.get("out", ".");

  util::Trace trace;
  util::DiagSink diags;
  core::ExecContext ctx;
  ctx.threads = args.get_int("threads", 0);
  ctx.diag = &diags;
  if (args.has("trace")) ctx.trace = &trace;
  std::optional<core::ArtifactStore> store;
  // Scope-exit GC: with --store-max-bytes, one-shot commands bound the
  // store directory after their run (serve additionally gc's inline after
  // any request that wrote, so a long-lived server never drifts over).
  struct StoreGcGuard {
    core::ArtifactStore* store = nullptr;
    std::uint64_t max_bytes = 0;
    ~StoreGcGuard() {
      if (store != nullptr && max_bytes > 0) store->gc(max_bytes);
    }
  } gc_guard;
  gc_guard.max_bytes =
      static_cast<std::uint64_t>(args.get_double("store-max-bytes", 0));
  if (args.has("store")) {
    store.emplace(args.get("store", "."));
    if (!store->ok()) {
      std::fprintf(stderr, "error: cannot open artifact store at %s\n",
                   store->dir().c_str());
      return 1;
    }
    ctx.store = &*store;
    gc_guard.store = &*store;
  }

  // serve ignores the spec flags (each request carries its own spec), so it
  // dispatches before spec validation and before anything prints to stdout.
  if (cmd == "serve") return run_serve(args, ctx);

  core::Flow flow(ctx);

  // Boundary validation up front, rendered as structured diagnostics:
  //   $ vcoadc_cli simulate --node=40 --slices=1 --fs=0
  //   error: flow rejected the input
  //   [error] spec: num_slices must be >= 2 (pseudo-differential ring)
  //   [error] spec: fs must be positive
  {
    const auto spec_diags = core::validate_spec(spec);
    core::SimulationOptions probe;
    probe.n_samples = n_samples;
    auto opt_diags = core::validate_sim_options(probe);
    diags.add_all(spec_diags);
    for (const auto& d : opt_diags) {
      if (d.item == "n_samples") diags.add(d);  // the only CLI-settable knob
    }
    if (diags.has_errors()) return fail_with_diags(diags);
  }
  std::printf("spec: %s\n", spec.describe().c_str());

  if (cmd == "simulate") {
    core::SimulationOptions opts;
    opts.n_samples = n_samples;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto res = flow.sim_run(spec, opts);
    if (res == nullptr) return fail_with_diags(diags);
    std::printf("SNDR %.1f dB | ENOB %.2f | power %s | FOM %.0f fJ/conv\n",
                res->sndr.sndr_db, res->sndr.enob,
                util::si_format(res->power.total_w(), "W").c_str(),
                res->fom_fj);
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "synthesize") {
    const auto res = flow.synthesis(spec);
    if (res == nullptr || res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::printf("area %.4f mm^2 | DRC %zu | routed %.0f um, %d vias, "
                "%d overflow | HPWL %.0f um\n",
                res->stats.die_area_m2 * 1e6, res->drc.violations.size(),
                res->detailed_routing.total_wirelength_m * 1e6,
                res->detailed_routing.total_vias,
                res->detailed_routing.overflowed_edges,
                res->routing.total_hpwl_m * 1e6);
    std::ofstream(out_dir + "/adc.fp") << res->floorplan_spec;
    std::ofstream(out_dir + "/adc_layout.txt")
        << res->layout->render_ascii(100);
    std::printf("wrote %s/adc.fp, %s/adc_layout.txt\n", out_dir.c_str(),
                out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "datasheet") {
    core::DatasheetOptions opts;
    opts.n_samples = n_samples;
    opts.amp_sweep_points = args.get_int("amp-sweep", 0);
    opts.batch_width = args.get_int("batch-width", 0);
    opts.exec = ctx;
    const auto ds = core::generate_datasheet(spec, opts);
    if (!ds.complete) return fail_with_diags(diags);
    std::printf("%s", ds.render().c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "montecarlo") {
    // Thin shim over evaluate(kMonteCarlo) — the same entry point serve
    // requests take, so the CLI and the wire protocol cannot drift.
    core::MonteCarloOptions opts;
    opts.runs = args.get_int("runs", 20);
    opts.sim.n_samples = n_samples;
    opts.sim.fin_target_hz = spec.bandwidth_hz / 5.0;
    opts.seed0 = static_cast<std::uint64_t>(args.get_int("seed0", 1000));
    opts.batch_width = args.get_int("batch-width", 0);
    opts.exec = ctx;
    const core::MonteCarloResult mc = core::monte_carlo_sndr(spec, opts);
    if (mc.sndr_db.empty() || diags.has_errors()) {
      return fail_with_diags(diags);
    }
    std::printf("MC SNDR over %zu draws: mean %.1f dB | sigma %.2f | "
                "min %.1f | max %.1f\n",
                mc.sndr_db.size(), mc.mean_db, mc.stddev_db, mc.min_db,
                mc.max_db);
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "corners") {
    core::EvalRequest req;
    req.kind = core::EvalKind::kCornerSweep;
    req.spec = spec;
    req.corners.n_samples = n_samples;
    req.corners.batch_width = args.get_int("batch-width", 0);
    const core::EvalResponse resp = core::evaluate(req, ctx);
    if (!resp.ok) return fail_with_diags(diags);
    for (const core::CornerResult& c : resp.corners) {
      std::printf("%-18s SNDR %.1f dB | power %s\n", c.name.c_str(),
                  c.sndr_db, util::si_format(c.power_w, "W").c_str());
    }
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "emit-verilog") {
    const auto hdl = flow.hdl_emit(spec);
    if (hdl == nullptr) return fail_with_diags(diags);
    std::ofstream(out_dir + "/adc_top.v") << hdl->verilog;
    std::printf("emitted %s: %zu bytes, %zu modules, %d instances verified "
                "equivalent to the generated netlist\n",
                hdl->top.c_str(), hdl->verilog.size(),
                hdl->parsed != nullptr ? hdl->parsed->modules().size()
                                       : std::size_t{0},
                hdl->instances_compared);
    std::printf("wrote %s/adc_top.v (sign-off text, the artifact of "
                "record)\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "gatesim") {
    core::GateSimOptions gopts;
    if (args.has("samples")) gopts.sim.n_samples = n_samples;
    gopts.sim.fin_target_hz = spec.bandwidth_hz / 5.0;
    gopts.ring_period_tol = args.get_double("ring-tol", 0.25);
    gopts.top = args.get("top", "");
    const auto gate = flow.gate_sim(spec, gopts);
    if (gate == nullptr) return fail_with_diags(diags);
    std::printf("comparator truth table: %s | ring period %.1f ps "
                "(predicted %.1f ps): %s\n",
                gate->comparator_ok ? "pass" : "FAIL",
                gate->ring_period_s * 1e12, gate->ring_period_pred_s * 1e12,
                gate->ring_ok ? "pass" : "FAIL");
    std::printf("replayed %zu samples x %d slices (%llu gate events) | "
                "decoded+decimated vs behavioral: %s\n",
                gate->n_samples, gate->num_slices,
                static_cast<unsigned long long>(gate->transitions),
                gate->matches_behavioral ? "bit-identical" : "DIVERGED");
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "export") {
    core::AdcDesign adc(spec, ctx);
    if (!adc.ok()) return fail_with_diags(diags);
    const tech::TechNode node = spec.tech_node();
    std::ofstream(out_dir + "/adc_top.v")
        << netlist::write_verilog(adc.netlist());
    std::ofstream(out_dir + "/adc_top.sp")
        << netlist::write_spice(adc.netlist(), node);
    std::ofstream(out_dir + "/stdcells.lef")
        << netlist::write_lef(adc.library());
    std::ofstream(out_dir + "/stdcells.lib")
        << netlist::write_liberty(adc.library(), node);
    const auto synth_res = flow.synthesis(spec);
    if (synth_res == nullptr || synth_res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::ofstream(out_dir + "/adc.fp") << synth_res->floorplan_spec;
    const auto gds = synth::write_gdsii(*synth_res->layout, "vcoadc");
    std::ofstream gf(out_dir + "/adc_top.gds", std::ios::binary);
    gf.write(reinterpret_cast<const char*>(gds.data()),
             static_cast<long>(gds.size()));
    std::printf("wrote adc_top.v adc_top.sp stdcells.lef stdcells.lib "
                "adc.fp adc_top.gds under %s\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  return usage(argv[0]);
}
