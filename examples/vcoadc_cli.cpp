// vcoadc_cli: command-line front end of the generator.
//
//   vcoadc_cli <command> [options]
//
//   commands:
//     simulate     behavioral run: SNDR/ENOB/power/FOM for a spec
//     synthesize   layout synthesis: area/DRC/routing, writes artifacts
//     datasheet    full-flow datasheet
//     export       write verilog/spice/lef/liberty/gds/fp artifacts
//
//   options (all commands):
//     --node=40         technology node [nm]
//     --slices=16       number of slices
//     --fs=750e6        modulator clock [Hz]
//     --bw=5e6          signal bandwidth [Hz]
//     --samples=16384   capture length for simulate/datasheet
//     --out=.           artifact output directory
#include <cstdio>
#include <fstream>

#include "core/adc.h"
#include "core/datasheet.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/spice.h"
#include "netlist/verilog_writer.h"
#include "synth/gdsii.h"
#include "util/cli.h"
#include "util/units.h"

using namespace vcoadc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <simulate|synthesize|datasheet|export> "
               "[--node=40] [--slices=16] [--fs=750e6] [--bw=5e6] "
               "[--samples=16384] [--out=.]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"node", "slices", "fs", "bw", "samples", "out"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", unknown[0].c_str());
    return usage(argv[0]);
  }
  if (args.positional().size() != 1) return usage(argv[0]);
  const std::string cmd = args.positional()[0];

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = args.get_double("node", 40);
  spec.num_slices = args.get_int("slices", 16);
  spec.fs_hz = args.get_double("fs", 750e6);
  spec.bandwidth_hz = args.get_double("bw", 5e6);
  const auto n_samples =
      static_cast<std::size_t>(args.get_int("samples", 16384));
  const std::string out_dir = args.get("out", ".");
  const auto problems = spec.validate();
  if (!problems.empty()) {
    std::fprintf(stderr, "invalid spec:\n");
    for (const auto& p : problems) std::fprintf(stderr, "  %s\n", p.c_str());
    return 1;
  }
  std::printf("spec: %s\n", spec.describe().c_str());

  if (cmd == "simulate") {
    core::AdcDesign adc(spec);
    core::SimulationOptions opts;
    opts.n_samples = n_samples;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto res = adc.simulate(opts);
    std::printf("SNDR %.1f dB | ENOB %.2f | power %s | FOM %.0f fJ/conv\n",
                res.sndr.sndr_db, res.sndr.enob,
                util::si_format(res.power.total_w(), "W").c_str(),
                res.fom_fj);
    return 0;
  }
  if (cmd == "synthesize") {
    core::AdcDesign adc(spec);
    const auto res = adc.synthesize();
    std::printf("area %.4f mm^2 | DRC %zu | routed %.0f um, %d vias, "
                "%d overflow | HPWL %.0f um\n",
                res.stats.die_area_m2 * 1e6, res.drc.violations.size(),
                res.detailed_routing.total_wirelength_m * 1e6,
                res.detailed_routing.total_vias,
                res.detailed_routing.overflowed_edges,
                res.routing.total_hpwl_m * 1e6);
    std::ofstream(out_dir + "/adc.fp") << res.floorplan_spec;
    std::ofstream(out_dir + "/adc_layout.txt")
        << res.layout->render_ascii(100);
    std::printf("wrote %s/adc.fp, %s/adc_layout.txt\n", out_dir.c_str(),
                out_dir.c_str());
    return 0;
  }
  if (cmd == "datasheet") {
    core::DatasheetOptions opts;
    opts.n_samples = n_samples;
    const auto ds = core::generate_datasheet(spec, opts);
    std::printf("%s", ds.render().c_str());
    return 0;
  }
  if (cmd == "export") {
    core::AdcDesign adc(spec);
    const tech::TechNode node = spec.tech_node();
    std::ofstream(out_dir + "/adc_top.v")
        << netlist::write_verilog(adc.netlist());
    std::ofstream(out_dir + "/adc_top.sp")
        << netlist::write_spice(adc.netlist(), node);
    std::ofstream(out_dir + "/stdcells.lef")
        << netlist::write_lef(adc.library());
    std::ofstream(out_dir + "/stdcells.lib")
        << netlist::write_liberty(adc.library(), node);
    const auto synth_res = adc.synthesize();
    std::ofstream(out_dir + "/adc.fp") << synth_res.floorplan_spec;
    const auto gds = synth::write_gdsii(*synth_res.layout, "vcoadc");
    std::ofstream gf(out_dir + "/adc_top.gds", std::ios::binary);
    gf.write(reinterpret_cast<const char*>(gds.data()),
             static_cast<long>(gds.size()));
    std::printf("wrote adc_top.v adc_top.sp stdcells.lef stdcells.lib "
                "adc.fp adc_top.gds under %s\n", out_dir.c_str());
    return 0;
  }
  return usage(argv[0]);
}
