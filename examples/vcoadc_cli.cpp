// vcoadc_cli: command-line front end of the generator.
//
//   vcoadc_cli <command> [options]
//
//   commands:
//     simulate     behavioral run: SNDR/ENOB/power/FOM for a spec
//     synthesize   layout synthesis: area/DRC/routing, writes artifacts
//     datasheet    full-flow datasheet
//     export       write verilog/spice/lef/liberty/gds/fp artifacts
//
//   options (all commands):
//     --node=40         technology node [nm]
//     --slices=16       number of slices
//     --fs=750e6        modulator clock [Hz]
//     --bw=5e6          signal bandwidth [Hz]
//     --samples=16384   capture length for simulate/datasheet
//     --out=.           artifact output directory
//     --threads=0       worker threads (0 = hardware concurrency)
//     --trace[=json]    print per-stage timing after the run (tree or JSONL)
//     --cache-stats     print artifact-cache counters after the run
#include <cstdio>
#include <fstream>

#include "core/adc.h"
#include "core/datasheet.h"
#include "core/flow.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/spice.h"
#include "netlist/verilog_writer.h"
#include "synth/gdsii.h"
#include "util/cli.h"
#include "util/trace.h"
#include "util/units.h"

using namespace vcoadc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <simulate|synthesize|datasheet|export> "
               "[--node=40] [--slices=16] [--fs=750e6] [--bw=5e6] "
               "[--samples=16384] [--out=.] [--threads=0] [--trace[=json]] "
               "[--cache-stats]\n",
               prog);
  return 2;
}

/// Structured-diagnostics epilogue: renders everything the flow collected
/// ("[severity] stage item: reason" per line) and returns the exit code.
int fail_with_diags(const util::DiagSink& sink) {
  std::fprintf(stderr, "error: flow rejected the input\n%s",
               sink.render().c_str());
  return 1;
}

/// --trace / --cache-stats epilogue, shared by every command.
void print_flow_stats(const util::ArgParser& args, const util::Trace& trace,
                      const core::ArtifactCache& cache) {
  if (args.has("trace")) {
    if (args.get("trace") == "json") {
      std::printf("%s", trace.render_jsonl().c_str());
    } else {
      std::printf("-- stage trace --\n%s", trace.render_tree().c_str());
    }
  }
  if (args.has("cache-stats")) {
    const core::ArtifactCacheStats st = cache.stats();
    std::printf(
        "-- artifact cache --\n"
        "  hits %llu | misses %llu | hit rate %.1f%% | evictions %llu\n"
        "  resident %zu entries, ~%.1f KiB\n",
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0,
        static_cast<unsigned long long>(st.evictions), st.entries,
        static_cast<double>(st.bytes) / 1024.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto unknown = args.unknown_flags({"node", "slices", "fs", "bw",
                                           "samples", "out", "threads",
                                           "trace", "cache-stats"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", unknown[0].c_str());
    return usage(argv[0]);
  }
  if (args.positional().size() != 1) return usage(argv[0]);
  const std::string cmd = args.positional()[0];

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = args.get_double("node", 40);
  spec.num_slices = args.get_int("slices", 16);
  spec.fs_hz = args.get_double("fs", 750e6);
  spec.bandwidth_hz = args.get_double("bw", 5e6);
  const long long samples_arg = args.get_int("samples", 16384);
  const auto n_samples = samples_arg > 0
                             ? static_cast<std::size_t>(samples_arg)
                             : std::size_t{0};
  const std::string out_dir = args.get("out", ".");

  util::Trace trace;
  util::DiagSink diags;
  core::ExecContext ctx;
  ctx.threads = args.get_int("threads", 0);
  ctx.diag = &diags;
  if (args.has("trace")) ctx.trace = &trace;
  core::Flow flow(ctx);

  // Boundary validation up front, rendered as structured diagnostics:
  //   $ vcoadc_cli simulate --node=40 --slices=1 --fs=0
  //   error: flow rejected the input
  //   [error] spec: num_slices must be >= 2 (pseudo-differential ring)
  //   [error] spec: fs must be positive
  {
    const auto spec_diags = core::validate_spec(spec);
    core::SimulationOptions probe;
    probe.n_samples = n_samples;
    auto opt_diags = core::validate_sim_options(probe);
    diags.add_all(spec_diags);
    for (const auto& d : opt_diags) {
      if (d.item == "n_samples") diags.add(d);  // the only CLI-settable knob
    }
    if (diags.has_errors()) return fail_with_diags(diags);
  }
  std::printf("spec: %s\n", spec.describe().c_str());

  if (cmd == "simulate") {
    core::SimulationOptions opts;
    opts.n_samples = n_samples;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto res = flow.sim_run(spec, opts);
    if (res == nullptr) return fail_with_diags(diags);
    std::printf("SNDR %.1f dB | ENOB %.2f | power %s | FOM %.0f fJ/conv\n",
                res->sndr.sndr_db, res->sndr.enob,
                util::si_format(res->power.total_w(), "W").c_str(),
                res->fom_fj);
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "synthesize") {
    const auto res = flow.synthesis(spec);
    if (res == nullptr || res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::printf("area %.4f mm^2 | DRC %zu | routed %.0f um, %d vias, "
                "%d overflow | HPWL %.0f um\n",
                res->stats.die_area_m2 * 1e6, res->drc.violations.size(),
                res->detailed_routing.total_wirelength_m * 1e6,
                res->detailed_routing.total_vias,
                res->detailed_routing.overflowed_edges,
                res->routing.total_hpwl_m * 1e6);
    std::ofstream(out_dir + "/adc.fp") << res->floorplan_spec;
    std::ofstream(out_dir + "/adc_layout.txt")
        << res->layout->render_ascii(100);
    std::printf("wrote %s/adc.fp, %s/adc_layout.txt\n", out_dir.c_str(),
                out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "datasheet") {
    core::DatasheetOptions opts;
    opts.n_samples = n_samples;
    opts.exec = ctx;
    const auto ds = core::generate_datasheet(spec, opts);
    if (!ds.complete) return fail_with_diags(diags);
    std::printf("%s", ds.render().c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "export") {
    core::AdcDesign adc(spec, ctx);
    if (!adc.ok()) return fail_with_diags(diags);
    const tech::TechNode node = spec.tech_node();
    std::ofstream(out_dir + "/adc_top.v")
        << netlist::write_verilog(adc.netlist());
    std::ofstream(out_dir + "/adc_top.sp")
        << netlist::write_spice(adc.netlist(), node);
    std::ofstream(out_dir + "/stdcells.lef")
        << netlist::write_lef(adc.library());
    std::ofstream(out_dir + "/stdcells.lib")
        << netlist::write_liberty(adc.library(), node);
    const auto synth_res = flow.synthesis(spec);
    if (synth_res == nullptr || synth_res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::ofstream(out_dir + "/adc.fp") << synth_res->floorplan_spec;
    const auto gds = synth::write_gdsii(*synth_res->layout, "vcoadc");
    std::ofstream gf(out_dir + "/adc_top.gds", std::ios::binary);
    gf.write(reinterpret_cast<const char*>(gds.data()),
             static_cast<long>(gds.size()));
    std::printf("wrote adc_top.v adc_top.sp stdcells.lef stdcells.lib "
                "adc.fp adc_top.gds under %s\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  return usage(argv[0]);
}
