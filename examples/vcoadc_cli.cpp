// vcoadc_cli: command-line front end of the generator.
//
//   vcoadc_cli <command> [options]
//
//   commands:
//     simulate     behavioral run: SNDR/ENOB/power/FOM for a spec
//     synthesize   layout synthesis: area/DRC/routing, writes artifacts
//     datasheet    full-flow datasheet
//     export       write verilog/spice/lef/liberty/gds/fp artifacts
//
//   options (all commands):
//     --node=40         technology node [nm]
//     --slices=16       number of slices
//     --fs=750e6        modulator clock [Hz]
//     --bw=5e6          signal bandwidth [Hz]
//     --samples=16384   capture length for simulate/datasheet
//     --out=.           artifact output directory
//     --threads=0       worker threads (0 = hardware concurrency)
//     --trace[=json]    print per-stage timing after the run (tree or JSONL)
//     --cache-stats     print artifact-cache counters after the run
#include <cstdio>
#include <fstream>

#include "core/adc.h"
#include "core/datasheet.h"
#include "core/flow.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/spice.h"
#include "netlist/verilog_writer.h"
#include "synth/gdsii.h"
#include "util/cli.h"
#include "util/trace.h"
#include "util/units.h"

using namespace vcoadc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <simulate|synthesize|datasheet|export> "
               "[--node=40] [--slices=16] [--fs=750e6] [--bw=5e6] "
               "[--samples=16384] [--out=.] [--threads=0] [--trace[=json]] "
               "[--cache-stats]\n",
               prog);
  return 2;
}

/// --trace / --cache-stats epilogue, shared by every command.
void print_flow_stats(const util::ArgParser& args, const util::Trace& trace,
                      const core::ArtifactCache& cache) {
  if (args.has("trace")) {
    if (args.get("trace") == "json") {
      std::printf("%s", trace.render_jsonl().c_str());
    } else {
      std::printf("-- stage trace --\n%s", trace.render_tree().c_str());
    }
  }
  if (args.has("cache-stats")) {
    const core::ArtifactCacheStats st = cache.stats();
    std::printf(
        "-- artifact cache --\n"
        "  hits %llu | misses %llu | hit rate %.1f%% | evictions %llu\n"
        "  resident %zu entries, ~%.1f KiB\n",
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0,
        static_cast<unsigned long long>(st.evictions), st.entries,
        static_cast<double>(st.bytes) / 1024.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto unknown = args.unknown_flags({"node", "slices", "fs", "bw",
                                           "samples", "out", "threads",
                                           "trace", "cache-stats"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", unknown[0].c_str());
    return usage(argv[0]);
  }
  if (args.positional().size() != 1) return usage(argv[0]);
  const std::string cmd = args.positional()[0];

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = args.get_double("node", 40);
  spec.num_slices = args.get_int("slices", 16);
  spec.fs_hz = args.get_double("fs", 750e6);
  spec.bandwidth_hz = args.get_double("bw", 5e6);
  const auto n_samples =
      static_cast<std::size_t>(args.get_int("samples", 16384));
  const std::string out_dir = args.get("out", ".");
  const auto problems = spec.validate();
  if (!problems.empty()) {
    std::fprintf(stderr, "invalid spec:\n");
    for (const auto& p : problems) std::fprintf(stderr, "  %s\n", p.c_str());
    return 1;
  }
  std::printf("spec: %s\n", spec.describe().c_str());

  util::Trace trace;
  core::ExecContext ctx;
  ctx.threads = args.get_int("threads", 0);
  if (args.has("trace")) ctx.trace = &trace;
  core::Flow flow(ctx);

  if (cmd == "simulate") {
    core::SimulationOptions opts;
    opts.n_samples = n_samples;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto res = flow.sim_run(spec, opts);
    std::printf("SNDR %.1f dB | ENOB %.2f | power %s | FOM %.0f fJ/conv\n",
                res->sndr.sndr_db, res->sndr.enob,
                util::si_format(res->power.total_w(), "W").c_str(),
                res->fom_fj);
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "synthesize") {
    const auto res = flow.synthesis(spec);
    std::printf("area %.4f mm^2 | DRC %zu | routed %.0f um, %d vias, "
                "%d overflow | HPWL %.0f um\n",
                res->stats.die_area_m2 * 1e6, res->drc.violations.size(),
                res->detailed_routing.total_wirelength_m * 1e6,
                res->detailed_routing.total_vias,
                res->detailed_routing.overflowed_edges,
                res->routing.total_hpwl_m * 1e6);
    std::ofstream(out_dir + "/adc.fp") << res->floorplan_spec;
    std::ofstream(out_dir + "/adc_layout.txt")
        << res->layout->render_ascii(100);
    std::printf("wrote %s/adc.fp, %s/adc_layout.txt\n", out_dir.c_str(),
                out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "datasheet") {
    core::DatasheetOptions opts;
    opts.n_samples = n_samples;
    opts.exec = ctx;
    const auto ds = core::generate_datasheet(spec, opts);
    std::printf("%s", ds.render().c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  if (cmd == "export") {
    core::AdcDesign adc(spec, ctx);
    const tech::TechNode node = spec.tech_node();
    std::ofstream(out_dir + "/adc_top.v")
        << netlist::write_verilog(adc.netlist());
    std::ofstream(out_dir + "/adc_top.sp")
        << netlist::write_spice(adc.netlist(), node);
    std::ofstream(out_dir + "/stdcells.lef")
        << netlist::write_lef(adc.library());
    std::ofstream(out_dir + "/stdcells.lib")
        << netlist::write_liberty(adc.library(), node);
    const auto synth_res = flow.synthesis(spec);
    std::ofstream(out_dir + "/adc.fp") << synth_res->floorplan_spec;
    const auto gds = synth::write_gdsii(*synth_res->layout, "vcoadc");
    std::ofstream gf(out_dir + "/adc_top.gds", std::ios::binary);
    gf.write(reinterpret_cast<const char*>(gds.data()),
             static_cast<long>(gds.size()));
    std::printf("wrote adc_top.v adc_top.sp stdcells.lef stdcells.lib "
                "adc.fp adc_top.gds under %s\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache);
    return 0;
  }
  return usage(argv[0]);
}
