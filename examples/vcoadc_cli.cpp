// vcoadc_cli: command-line front end of the generator.
//
//   vcoadc_cli <command> [options]
//
//   commands:
//     simulate     behavioral run: SNDR/ENOB/power/FOM for a spec
//     synthesize   layout synthesis: area/DRC/routing, writes artifacts
//     datasheet    full-flow datasheet (--amp-sweep adds the SNDR-vs-level
//                  curve, batched through the SIMD engine)
//     montecarlo   mismatch Monte Carlo: SNDR distribution over --runs draws
//     corners      PVT corner sweep: SNDR/power at the canonical six corners
//     export       write verilog/spice/lef/liberty/gds/fp artifacts
//     emit-verilog emitted-HDL flow stage: render the netlist to Verilog,
//                  re-parse it, assert structural equivalence, write the
//                  sign-off text (the artifact of record) to --out
//     gatesim      gate-level sign-off: event-driven simulation of the
//                  re-parsed emitted HDL (comparator truth table, ring
//                  period, slice replay) cross-checked bit-for-bit against
//                  the behavioral engine through the shared digital backend
//     serve        long-running evaluation service: newline-delimited JSON
//                  requests on stdin, one JSON response per line on stdout
//                  (spec flags are ignored; each request carries its own)
//
//   options (all commands):
//     --node=40         technology node [nm]
//     --slices=16       number of slices
//     --fs=750e6        modulator clock [Hz]
//     --bw=5e6          signal bandwidth [Hz]
//     --samples=16384   capture length for simulate/datasheet/montecarlo/
//                       corners
//     --runs=20         Monte-Carlo draw count (montecarlo)
//     --seed0=1000      seed of draw 0; draw i uses seed0 + i (montecarlo)
//     --batch-width=0   SIMD lane width for the batched transient engine
//                       (montecarlo/corners/datasheet): 0 = host-preferred,
//                       1 = scalar, 2/4/8 = forced width; results are
//                       bit-identical at every setting
//     --amp-sweep=0     SNDR-vs-amplitude sweep points (datasheet); 0 = off
//     --top=<name>      top module for gatesim (default: the emitted top)
//     --ring-tol=0.25   relative ring-period tolerance vs the stage-delay
//                       prediction (gatesim)
//     --out=.           artifact output directory
//     --threads=0       worker threads (0 = hardware concurrency)
//     --store=<dir>     persistent artifact store: stages load cached
//                       artifacts written by earlier processes and save
//                       their own (serve shares one store across requests)
//     --trace[=json]    print per-stage timing after the run (tree or JSONL;
//                       serve embeds a "trace" array per response, json only)
//     --cache-stats     print artifact-cache counters after the run (serve
//                       embeds a per-request "cache" delta object)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/adc.h"
#include "core/artifact_store.h"
#include "core/batch.h"
#include "core/datasheet.h"
#include "core/eval.h"
#include "core/flow.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/spice.h"
#include "netlist/verilog_writer.h"
#include "synth/gdsii.h"
#include "util/cli.h"
#include "util/simd.h"
#include "util/trace.h"
#include "util/units.h"

using namespace vcoadc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <simulate|synthesize|datasheet|montecarlo|corners|"
               "export|emit-verilog|gatesim|serve> "
               "[--node=40] [--slices=16] [--fs=750e6] [--bw=5e6] "
               "[--samples=16384] [--runs=20] [--seed0=1000] "
               "[--batch-width=0] [--amp-sweep=0] [--top=<module>] "
               "[--ring-tol=0.25] [--out=.] [--threads=0] "
               "[--store=<dir>] [--trace[=json]] [--cache-stats]\n",
               prog);
  return 2;
}

/// Structured-diagnostics epilogue: renders everything the flow collected
/// ("[severity] stage item: reason" per line) and returns the exit code.
int fail_with_diags(const util::DiagSink& sink) {
  std::fprintf(stderr, "error: flow rejected the input\n%s",
               sink.render().c_str());
  return 1;
}

/// --trace / --cache-stats epilogue, shared by every command. `store` is
/// null when --store was not given.
void print_flow_stats(const util::ArgParser& args, const util::Trace& trace,
                      const core::ArtifactCache& cache,
                      const core::ArtifactStore* store) {
  if (args.has("trace")) {
    if (args.get("trace") == "json") {
      std::printf("%s", trace.render_jsonl().c_str());
    } else {
      std::printf("-- stage trace --\n%s", trace.render_tree().c_str());
    }
  }
  if (args.has("cache-stats")) {
    std::printf("-- simd --\n  %s\n",
                util::simd::runtime_summary().c_str());
    const core::ArtifactCacheStats st = cache.stats();
    std::printf(
        "-- artifact cache --\n"
        "  hits %llu | misses %llu | hit rate %.1f%% | evictions %llu\n"
        "  resident %zu entries, ~%.1f KiB\n",
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0,
        static_cast<unsigned long long>(st.evictions), st.entries,
        static_cast<double>(st.bytes) / 1024.0);
    if (store != nullptr) {
      const core::ArtifactStoreStats ss = store->stats();
      std::printf(
          "-- artifact store --\n"
          "  hits %llu | misses %llu (absent %llu, corrupt %llu, "
          "version skew %llu)\n"
          "  writes %llu (%llu failed) | read %.1f KiB | wrote %.1f KiB\n",
          static_cast<unsigned long long>(ss.hits),
          static_cast<unsigned long long>(ss.misses),
          static_cast<unsigned long long>(ss.absent),
          static_cast<unsigned long long>(ss.corrupt),
          static_cast<unsigned long long>(ss.version_skew),
          static_cast<unsigned long long>(ss.writes),
          static_cast<unsigned long long>(ss.write_failures),
          static_cast<double>(ss.bytes_read) / 1024.0,
          static_cast<double>(ss.bytes_written) / 1024.0);
    }
  }
}

namespace json = util::json;

/// Renders a per-request trace as a JSON array (one object per span, same
/// records as --trace=json's JSONL, parsed back so the response stays one
/// well-formed document).
json::Value trace_to_json(const util::Trace& trace) {
  json::Value arr = json::Value::make_array();
  const std::string jsonl = trace.render_jsonl();
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string_view line(jsonl.data() + pos, nl - pos);
    if (!line.empty()) {
      json::ParseResult pr = json::parse(line);
      arr.push(pr.ok ? std::move(pr.value)
                     : json::Value::make_string(std::string(line)));
    }
    pos = nl + 1;
  }
  return arr;
}

/// Per-request cache/store counter deltas. `cold_builds` is the number of
/// stages this request had to build from scratch: store misses when a
/// persistent store backs the run (a memory-cache miss that loads from disk
/// is warm), plain cache misses otherwise.
json::Value cache_delta_json(const core::ArtifactCacheStats& c0,
                             const core::ArtifactCacheStats& c1,
                             const core::ArtifactStore* store,
                             const core::ArtifactStoreStats& s0) {
  json::Value o = json::Value::make_object();
  const auto num = [](std::uint64_t v) {
    return json::Value::make_number(static_cast<double>(v));
  };
  o.set("hits", num(c1.hits - c0.hits));
  o.set("misses", num(c1.misses - c0.misses));
  std::uint64_t cold = c1.misses - c0.misses;
  if (store != nullptr) {
    const core::ArtifactStoreStats s1 = store->stats();
    o.set("store_hits", num(s1.hits - s0.hits));
    o.set("store_misses", num(s1.misses - s0.misses));
    o.set("store_writes", num(s1.writes - s0.writes));
    cold = s1.misses - s0.misses;
  }
  o.set("cold_builds", num(cold));
  // Active SIMD dispatch of the batched transient engine: clients asserting
  // result_fp across hosts read this to know which tier produced the
  // (bit-identical) result, and perf dashboards bucket timings by it.
  o.set("simd_tier", json::Value::make_string(
                         util::simd::tier_name(util::simd::active_tier())));
  o.set("simd_width", num(static_cast<std::uint64_t>(
                          util::simd::active_width())));
  return o;
}

/// Echoes the request's "id" (as-is) into a response object, if present.
void echo_id(const json::Value& req, json::Value* resp) {
  if (const json::Value* id = req.find("id")) resp->set("id", *id);
}

json::Value error_response(const json::Value& req, const std::string& what) {
  json::Value resp = json::Value::make_object();
  echo_id(req, &resp);
  resp.set("ok", json::Value::make_bool(false));
  resp.set("error", json::Value::make_string(what));
  return resp;
}

/// One evaluation request -> one response object. Diagnostics are request-
/// local (fresh sink per request), the cache/store in `base` are shared
/// across the whole serve session — that is the point of serving.
json::Value handle_eval(const json::Value& reqv,
                        const core::ExecContext& base, bool want_trace) {
  core::EvalRequest req;
  std::string err;
  if (!core::eval_request_from_json(reqv, &req, &err)) {
    return error_response(reqv, err);
  }
  util::DiagSink sink;
  util::Trace trace;
  core::ExecContext ctx = base;
  ctx.diag = &sink;
  ctx.trace = want_trace ? &trace : nullptr;
  const core::EvalResponse resp = core::evaluate(req, ctx);

  json::Value out = json::Value::make_object();
  out.set("id", json::Value::make_string(resp.id));
  out.set("cmd", json::Value::make_string(core::eval_kind_name(resp.kind)));
  out.set("ok", json::Value::make_bool(resp.ok));
  json::Value result = core::eval_result_to_json(resp);
  out.set("result_fp",
          json::Value::make_string(core::eval_result_fingerprint(result)));
  out.set("result", std::move(result));
  out.set("diagnostics", core::diagnostics_to_json(resp.diagnostics));
  if (want_trace) out.set("trace", trace_to_json(trace));
  return out;
}

/// {"cmd":"batch","requests":[...]} fans the sub-requests across a
/// BatchRunner; sub-responses come back in request order and the outer ok
/// is the conjunction. The shared cache/store make overlapping sub-requests
/// (e.g. same spec, different analyses) converge on one stage build.
json::Value handle_batch(const json::Value& reqv,
                         const core::ExecContext& base, bool want_trace) {
  const json::Value* reqs = reqv.find("requests");
  if (reqs == nullptr || !reqs->is_array()) {
    return error_response(reqv, "batch request needs a \"requests\" array");
  }
  core::BatchOptions bopts;
  bopts.threads = base.threads;
  core::BatchRunner runner(bopts);
  std::vector<json::Value> results =
      runner.map(reqs->array.size(), [&](std::size_t i, std::uint64_t) {
        return handle_eval(reqs->array[i], base, want_trace);
      });

  json::Value out = json::Value::make_object();
  echo_id(reqv, &out);
  out.set("cmd", json::Value::make_string("batch"));
  bool all_ok = true;
  json::Value arr = json::Value::make_array();
  for (json::Value& r : results) {
    const json::Value* ok = r.find("ok");
    all_ok = all_ok && ok != nullptr && ok->bool_or(false);
    arr.push(std::move(r));
  }
  out.set("ok", json::Value::make_bool(all_ok));
  out.set("results", std::move(arr));
  return out;
}

/// The evaluation service: newline-delimited JSON requests on stdin, one
/// response line each on stdout (nothing else is written to stdout — the
/// stream stays machine-parseable). One warm ExecContext is shared by every
/// request, so repeated specs hit the in-process cache; with --store the
/// stage artifacts also persist across serve processes.
int run_serve(const util::ArgParser& args, core::ExecContext ctx) {
  const bool want_stats = args.has("cache-stats");
  const bool want_trace = args.has("trace") && args.get("trace") == "json";
  core::ArtifactCache cache(512);
  ctx.cache = &cache;
  ctx.diag = nullptr;   // per-request sinks; nothing global to collect into
  ctx.trace = nullptr;  // per-request traces when --trace=json

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value out;
    json::ParseResult pr = json::parse(line);
    if (!pr.ok) {
      out = error_response(json::Value::make_null(),
                           "request parse error: " + pr.error);
    } else {
      const core::ArtifactCacheStats c0 = cache.stats();
      const core::ArtifactStoreStats s0 =
          ctx.store != nullptr ? ctx.store->stats() : core::ArtifactStoreStats{};
      const json::Value* cmd = pr.value.find("cmd");
      if (cmd != nullptr && cmd->is_string() && cmd->string == "batch") {
        out = handle_batch(pr.value, ctx, want_trace);
      } else {
        out = handle_eval(pr.value, ctx, want_trace);
      }
      if (want_stats) {
        out.set("cache", cache_delta_json(c0, cache.stats(), ctx.store, s0));
      }
    }
    const std::string rendered = json::dump(out);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto unknown = args.unknown_flags({"node", "slices", "fs", "bw",
                                           "samples", "runs", "seed0",
                                           "batch-width", "amp-sweep", "top",
                                           "ring-tol", "out", "threads",
                                           "store", "trace", "cache-stats"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", unknown[0].c_str());
    return usage(argv[0]);
  }
  if (args.positional().size() != 1) return usage(argv[0]);
  const std::string cmd = args.positional()[0];

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = args.get_double("node", 40);
  spec.num_slices = args.get_int("slices", 16);
  spec.fs_hz = args.get_double("fs", 750e6);
  spec.bandwidth_hz = args.get_double("bw", 5e6);
  const long long samples_arg = args.get_int("samples", 16384);
  const auto n_samples = samples_arg > 0
                             ? static_cast<std::size_t>(samples_arg)
                             : std::size_t{0};
  const std::string out_dir = args.get("out", ".");

  util::Trace trace;
  util::DiagSink diags;
  core::ExecContext ctx;
  ctx.threads = args.get_int("threads", 0);
  ctx.diag = &diags;
  if (args.has("trace")) ctx.trace = &trace;
  std::optional<core::ArtifactStore> store;
  if (args.has("store")) {
    store.emplace(args.get("store", "."));
    if (!store->ok()) {
      std::fprintf(stderr, "error: cannot open artifact store at %s\n",
                   store->dir().c_str());
      return 1;
    }
    ctx.store = &*store;
  }

  // serve ignores the spec flags (each request carries its own spec), so it
  // dispatches before spec validation and before anything prints to stdout.
  if (cmd == "serve") return run_serve(args, ctx);

  core::Flow flow(ctx);

  // Boundary validation up front, rendered as structured diagnostics:
  //   $ vcoadc_cli simulate --node=40 --slices=1 --fs=0
  //   error: flow rejected the input
  //   [error] spec: num_slices must be >= 2 (pseudo-differential ring)
  //   [error] spec: fs must be positive
  {
    const auto spec_diags = core::validate_spec(spec);
    core::SimulationOptions probe;
    probe.n_samples = n_samples;
    auto opt_diags = core::validate_sim_options(probe);
    diags.add_all(spec_diags);
    for (const auto& d : opt_diags) {
      if (d.item == "n_samples") diags.add(d);  // the only CLI-settable knob
    }
    if (diags.has_errors()) return fail_with_diags(diags);
  }
  std::printf("spec: %s\n", spec.describe().c_str());

  if (cmd == "simulate") {
    core::SimulationOptions opts;
    opts.n_samples = n_samples;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto res = flow.sim_run(spec, opts);
    if (res == nullptr) return fail_with_diags(diags);
    std::printf("SNDR %.1f dB | ENOB %.2f | power %s | FOM %.0f fJ/conv\n",
                res->sndr.sndr_db, res->sndr.enob,
                util::si_format(res->power.total_w(), "W").c_str(),
                res->fom_fj);
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "synthesize") {
    const auto res = flow.synthesis(spec);
    if (res == nullptr || res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::printf("area %.4f mm^2 | DRC %zu | routed %.0f um, %d vias, "
                "%d overflow | HPWL %.0f um\n",
                res->stats.die_area_m2 * 1e6, res->drc.violations.size(),
                res->detailed_routing.total_wirelength_m * 1e6,
                res->detailed_routing.total_vias,
                res->detailed_routing.overflowed_edges,
                res->routing.total_hpwl_m * 1e6);
    std::ofstream(out_dir + "/adc.fp") << res->floorplan_spec;
    std::ofstream(out_dir + "/adc_layout.txt")
        << res->layout->render_ascii(100);
    std::printf("wrote %s/adc.fp, %s/adc_layout.txt\n", out_dir.c_str(),
                out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "datasheet") {
    core::DatasheetOptions opts;
    opts.n_samples = n_samples;
    opts.amp_sweep_points = args.get_int("amp-sweep", 0);
    opts.batch_width = args.get_int("batch-width", 0);
    opts.exec = ctx;
    const auto ds = core::generate_datasheet(spec, opts);
    if (!ds.complete) return fail_with_diags(diags);
    std::printf("%s", ds.render().c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "montecarlo") {
    // Thin shim over evaluate(kMonteCarlo) — the same entry point serve
    // requests take, so the CLI and the wire protocol cannot drift.
    core::MonteCarloOptions opts;
    opts.runs = args.get_int("runs", 20);
    opts.sim.n_samples = n_samples;
    opts.sim.fin_target_hz = spec.bandwidth_hz / 5.0;
    opts.seed0 = static_cast<std::uint64_t>(args.get_int("seed0", 1000));
    opts.batch_width = args.get_int("batch-width", 0);
    opts.exec = ctx;
    const core::MonteCarloResult mc = core::monte_carlo_sndr(spec, opts);
    if (mc.sndr_db.empty() || diags.has_errors()) {
      return fail_with_diags(diags);
    }
    std::printf("MC SNDR over %zu draws: mean %.1f dB | sigma %.2f | "
                "min %.1f | max %.1f\n",
                mc.sndr_db.size(), mc.mean_db, mc.stddev_db, mc.min_db,
                mc.max_db);
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "corners") {
    core::EvalRequest req;
    req.kind = core::EvalKind::kCornerSweep;
    req.spec = spec;
    req.corners.n_samples = n_samples;
    req.corners.batch_width = args.get_int("batch-width", 0);
    const core::EvalResponse resp = core::evaluate(req, ctx);
    if (!resp.ok) return fail_with_diags(diags);
    for (const core::CornerResult& c : resp.corners) {
      std::printf("%-18s SNDR %.1f dB | power %s\n", c.name.c_str(),
                  c.sndr_db, util::si_format(c.power_w, "W").c_str());
    }
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "emit-verilog") {
    const auto hdl = flow.hdl_emit(spec);
    if (hdl == nullptr) return fail_with_diags(diags);
    std::ofstream(out_dir + "/adc_top.v") << hdl->verilog;
    std::printf("emitted %s: %zu bytes, %zu modules, %d instances verified "
                "equivalent to the generated netlist\n",
                hdl->top.c_str(), hdl->verilog.size(),
                hdl->parsed != nullptr ? hdl->parsed->modules().size()
                                       : std::size_t{0},
                hdl->instances_compared);
    std::printf("wrote %s/adc_top.v (sign-off text, the artifact of "
                "record)\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "gatesim") {
    core::GateSimOptions gopts;
    if (args.has("samples")) gopts.sim.n_samples = n_samples;
    gopts.sim.fin_target_hz = spec.bandwidth_hz / 5.0;
    gopts.ring_period_tol = args.get_double("ring-tol", 0.25);
    gopts.top = args.get("top", "");
    const auto gate = flow.gate_sim(spec, gopts);
    if (gate == nullptr) return fail_with_diags(diags);
    std::printf("comparator truth table: %s | ring period %.1f ps "
                "(predicted %.1f ps): %s\n",
                gate->comparator_ok ? "pass" : "FAIL",
                gate->ring_period_s * 1e12, gate->ring_period_pred_s * 1e12,
                gate->ring_ok ? "pass" : "FAIL");
    std::printf("replayed %zu samples x %d slices (%llu gate events) | "
                "decoded+decimated vs behavioral: %s\n",
                gate->n_samples, gate->num_slices,
                static_cast<unsigned long long>(gate->transitions),
                gate->matches_behavioral ? "bit-identical" : "DIVERGED");
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  if (cmd == "export") {
    core::AdcDesign adc(spec, ctx);
    if (!adc.ok()) return fail_with_diags(diags);
    const tech::TechNode node = spec.tech_node();
    std::ofstream(out_dir + "/adc_top.v")
        << netlist::write_verilog(adc.netlist());
    std::ofstream(out_dir + "/adc_top.sp")
        << netlist::write_spice(adc.netlist(), node);
    std::ofstream(out_dir + "/stdcells.lef")
        << netlist::write_lef(adc.library());
    std::ofstream(out_dir + "/stdcells.lib")
        << netlist::write_liberty(adc.library(), node);
    const auto synth_res = flow.synthesis(spec);
    if (synth_res == nullptr || synth_res->layout == nullptr) {
      return fail_with_diags(diags);
    }
    std::ofstream(out_dir + "/adc.fp") << synth_res->floorplan_spec;
    const auto gds = synth::write_gdsii(*synth_res->layout, "vcoadc");
    std::ofstream gf(out_dir + "/adc_top.gds", std::ios::binary);
    gf.write(reinterpret_cast<const char*>(gds.data()),
             static_cast<long>(gds.size()));
    std::printf("wrote adc_top.v adc_top.sp stdcells.lef stdcells.lib "
                "adc.fp adc_top.gds under %s\n", out_dir.c_str());
    print_flow_stats(args, trace, *ctx.cache, ctx.store);
    return 0;
  }
  return usage(argv[0]);
}
