// Ports the same ADC design across technology nodes - the Sec. 4 migration
// experiment generalized. The HDL stays fixed; cells remap to their
// closest-size counterparts in each target library, the layout re-
// synthesizes, and the behavioral model re-evaluates. This is the paper's
// "describing AMS circuit in HDL greatly enhances circuit portability".
#include <cstdio>
#include <iostream>

#include "core/adc.h"
#include "core/flow.h"
#include "core/migration.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace vcoadc;

  // The source design: the 40 nm Table 3 part.
  const core::AdcSpec src_spec = core::AdcSpec::paper_40nm();
  core::Flow flow;
  std::printf("source: %s\n\n", src_spec.describe().c_str());

  util::Table t("one design, four nodes");
  t.set_header({"node", "remapped cells", "area [mm^2]", "SNDR [dB]",
                "power [mW]", "FOM [fJ/conv]"});

  for (double node : {180.0, 90.0, 65.0, 40.0}) {
    // 1. Netlist migration onto the target node's (cache-shared) library.
    const tech::TechNode tn = tech::TechDatabase::standard().at(node);
    const core::MigratedDesign mig = flow.migrate(src_spec, node);

    // 2. Layout re-synthesis on the migrated netlist.
    const auto layout = synth::synthesize(mig.result.design, {});

    // 3. Behavioral re-evaluation at the ported operating point (clock
    //    scaled with the node's FO4 so the ring has the same relative
    //    headroom everywhere).
    core::AdcSpec spec = src_spec;
    spec.node_nm = node;
    const double speed = tech::TechDatabase::standard().at(40).fo4_delay_s /
                         tn.fo4_delay_s;
    spec.fs_hz = 750e6 * speed;
    spec.bandwidth_hz = 5e6 * speed;
    core::SimulationOptions opts;
    opts.n_samples = 1 << 14;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const core::RunResult run = *flow.sim_run(spec, opts);

    t.add_row({tn.name, std::to_string(mig.result.remapped.size()),
               util::fixed_format(layout.stats.die_area_m2 * 1e6, 4),
               util::fixed_format(run.sndr.sndr_db, 1),
               util::fixed_format(run.power.total_w() * 1e3, 2),
               util::fixed_format(run.fom_fj, 0)});
  }
  t.add_footnote("fs scales with 1/FO4: same circuit, faster and cheaper "
                 "every node - the scaling-compatibility claim");
  t.print(std::cout);
  return 0;
}
